"""Silent-data-corruption defense: cone-bounded detection + surgical healing.

Crashes, NaN/Inf and torn files are *loud*.  A bit flip that lands on a
mantissa bit is not: the value stays finite and plausible, every existing
guard passes, and in an iterative stencil the corruption spreads by the
stencil radius R per time step until it owns the grid.  This module makes
such flips (a) injectable, (b) detectable, and (c) *surgically* healable —
recomputing only the propagation cone around the corrupted planes instead
of restarting the run.

The detection and repair math is the paper's own Eq. 2 overestimation
region: after ``s`` time steps, a value can have influenced (or been
influenced by) cells at most ``h = R * s`` planes away, and a cut face of
a Z sub-extent leaves every plane at depth ``>= h`` bit-exact (physical
boundaries are exact at any depth — the constant shell never shrinks, see
:func:`repro.core.regions.compute_range`).  Two consequences:

* a plane corrupted at applied-step ``t`` and detected at ``t' >= t`` is
  reproducible from any trusted base at ``t0 <= t`` by replaying the
  plane's cone: the detected planes grown by ``R * (t' - t0)`` per cut
  side, clipped to the grid — :func:`repro.core.regions.loaded_extent`;
* the replay may use *any* rung of the bit-exact fallback ladder; this
  module uses the naive reference sweep (the ladder's bottom rung and the
  strongest oracle), so a healed grid is bit-identical to fault-free.

Integrity tiers (``JobSpec.integrity`` / ``repro run --verify``):

``off``
    nothing — the guard is a no-op and costs a branch per round.
``spot``
    per-plane CRC32 *seals* of the grid after every round, verified at
    the next round boundary (catches resting flips at exact plane
    granularity), plus a deterministic pseudo-random sample of Z bands
    re-executed from the last trusted state through the naive rung and
    compared bit-for-bit (catches compute-side SDC probabilistically).
``seal``
    ``spot`` plus the durable surfaces: checkpoint/buddy payload digests
    (always stamped; this tier *requires* them on load) and the
    cross-rank halo-plane checksum handshake in the distributed driver.
``full``
    ``seal`` with the sampled re-execution widened to the whole grid —
    every plane re-derived from the trusted base each round.  Detection
    is exhaustive; the cost is about one extra reference sweep per round
    (benchmarked in ``benchmarks/bench_sdc.py``).

The ``memory.flip`` fault site injects flips (``site=rank:round`` detail
grammar, budget = bit count); ``disk.bitrot`` rots a checkpoint payload
after it is fsynced.  :func:`run_sdc_soak` drives seeded flip/bitrot
schedules through a guarded run and judges *no silent corruption*: every
in-window flip detected, every healed run bit-identical to the fault-free
oracle.
"""

from __future__ import annotations

import json
import time
import zlib
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..core.naive import run_naive
from ..core.regions import loaded_extent
from ..obs.metrics import METRICS
from ..obs.trace import TRACE
from ..stencils.grid import Field3D
from .faultinject import FAULTS, ResilienceError

__all__ = [
    "INTEGRITY_TIERS",
    "MAX_FLIPS_PER_PROBE",
    "SDC_SCHEDULES",
    "SdcChaosCase",
    "SdcChaosResult",
    "SdcError",
    "SdcGuard",
    "SdcReport",
    "SdcUnhealableError",
    "data_digest",
    "flip_bits",
    "inject_flips",
    "make_sdc_case",
    "plane_crcs",
    "rot_file",
    "run_sdc_case",
    "run_sdc_soak",
    "write_sdc_bundle",
]

#: the integrity ladder, weakest to strongest
INTEGRITY_TIERS = ("off", "spot", "seal", "full")

#: cap on bits flipped per probe point, so ``memory.flip:*`` (unlimited
#: budget) means "flip at every probe", not an unbounded drain loop
MAX_FLIPS_PER_PROBE = 64

#: fault families the SDC chaos schedule generator knows how to draw
SDC_SCHEDULES = ("flip", "bitrot")


class SdcError(ResilienceError):
    """Silent data corruption was detected (and could not be ignored)."""


class SdcUnhealableError(SdcError):
    """Corruption was detected but could not be surgically repaired:
    the heal budget is exhausted, no trusted base exists, or a healed
    plane still fails verification."""


# ----------------------------------------------------------------------
# primitives: seals, digests, flips, bitrot
# ----------------------------------------------------------------------

def plane_crcs(data: np.ndarray) -> list[int]:
    """CRC32 per Z plane of a ``(ncomp, nz, ny, nx)`` grid array."""
    return [
        zlib.crc32(np.ascontiguousarray(data[:, z]))
        for z in range(data.shape[1])
    ]


def data_digest(data: np.ndarray) -> str:
    """sha256 hex digest of an array's raw bytes (C order)."""
    import hashlib

    return hashlib.sha256(np.ascontiguousarray(data)).hexdigest()


def flip_bits(data: np.ndarray, count: int, entropy) -> list[tuple]:
    """Flip ``count`` distinct low-order (mantissa) bits at deterministic
    pseudo-random positions; returns the ``(index, bit)`` list.

    Mantissa bits keep floats finite and *plausible* — exactly the flips
    no NaN/Inf health check can see.  Integer grids flip any bit below
    the sign bit.
    """
    rng = np.random.default_rng(entropy)
    if data.dtype == np.float64:
        view, bits = data.view(np.uint64), 52
    elif data.dtype == np.float32:
        view, bits = data.view(np.uint32), 23
    elif np.issubdtype(data.dtype, np.integer):
        view, bits = data, max(1, data.dtype.itemsize * 8 - 1)
    else:
        raise TypeError(f"cannot flip bits of dtype {data.dtype}")
    chosen: set[tuple] = set()
    flipped: list[tuple] = []
    for _ in range(count):
        while True:
            idx = tuple(int(rng.integers(0, s)) for s in data.shape)
            bit = int(rng.integers(0, bits))
            if (idx, bit) not in chosen:
                break
        chosen.add((idx, bit))
        view[idx] = view[idx] ^ view.dtype.type(1 << bit)
        flipped.append((idx, bit))
    return flipped


def inject_flips(
    data: np.ndarray,
    *,
    rank: int,
    round_index: int,
    seed: int = 0,
    detail: str | None = None,
    faults=FAULTS,
) -> int:
    """The ``memory.flip`` probe: one ``should`` drain per bit to flip.

    The probe detail is ``"rank:round"`` (single-process callers are rank
    0), so ``memory.flip=0:2:3`` means "three bits in rank 0's grid at
    the end of round 2" — the spec's ``:times`` budget *is* the bit
    count.  ``memory.flip:*`` (no arg) flips at every probe, capped at
    :data:`MAX_FLIPS_PER_PROBE` bits each.  Returns the bits flipped.
    """
    detail = f"{rank}:{round_index}" if detail is None else detail
    fired = 0
    for _ in range(MAX_FLIPS_PER_PROBE):
        if not faults.should("memory.flip", detail):
            break
        fired += 1
    if fired:
        flip_bits(data, fired, entropy=[abs(seed), rank, round_index])
    return fired


def rot_file(path, *, xor: int = 0x40) -> bool:
    """Corrupt one byte in the middle of ``path`` in place (disk bitrot).

    Deterministic (fixed offset, fixed XOR mask) so a rotted artifact is
    reproducible from the fault spec alone.  Returns False for an empty
    or unwritable file.
    """
    p = Path(path)
    try:
        size = p.stat().st_size
        if size == 0:
            return False
        offset = size // 2
        with open(p, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            if not byte:
                return False
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ xor]))
            fh.flush()
        return True
    except OSError:
        return False


# ----------------------------------------------------------------------
# the report
# ----------------------------------------------------------------------

@dataclass
class SdcReport:
    """Machine-checkable record of one run's integrity activity."""

    tier: str = "off"
    #: verification events (seal verifies + re-execution checks)
    checks: int = 0
    #: planes CRC-sealed over the run
    sealed_planes: int = 0
    #: detection events / total planes found corrupt
    detections: int = 0
    detected_planes: int = 0
    #: surgical heals performed / cells recomputed for them (cone cells)
    heals: int = 0
    replayed_cells: int = 0
    #: cells recomputed purely for verification (band/full re-execution)
    verified_cells: int = 0
    #: applied-step counts at which detections occurred
    detected_at: list = field(default_factory=list)
    unhealable: int = 0

    @property
    def degraded(self) -> bool:
        """True when corruption was seen — the run finished, but not clean."""
        return self.detections > 0

    def lines(self) -> list[str]:
        """Human-readable summary lines (empty when nothing was detected)."""
        if not self.detections:
            return []
        return [
            f"sdc detected : {self.detections} event(s), "
            f"{self.detected_planes} plane(s), at step(s) "
            f"{', '.join(map(str, self.detected_at))}",
            f"sdc healed   : {self.heals} surgical repair(s), "
            f"{self.replayed_cells} cell(s) replayed "
            f"(tier {self.tier}, {self.checks} check(s))",
        ]


# ----------------------------------------------------------------------
# the guard
# ----------------------------------------------------------------------

class SdcGuard:
    """Per-run SDC detector/healer shared by GuardedSweep and the serve path.

    The caller owns the trusted base (its last checkpointed
    ``(good_state, good_done)`` pair — which by construction is refreshed
    *before* any corruption window opens) and drives three hooks per
    round:

    ``verify_seals(state, done, good, good_done)``
        compare the grid against the CRC seals taken after the previous
        round; mismatching planes are resting corruption, healed by cone
        replay from the trusted base.  Call once more after the last
        round so flips landing after the final seal stay in-window.
    ``check_round(state, done, good, good_done, round_index)``
        re-execute Z bands from the trusted base through the naive
        reference rung and compare bit-for-bit (a pseudo-random sample
        at ``spot``/``seal``, every plane at ``full``); mismatches are
        compute-side corruption, healed from the same replay.
    ``seal(state)``
        CRC-seal the (now verified) grid for the next round's
        ``verify_seals``.

    Healing is *surgical*: only the detected planes grown by the
    ``R * (done - good_done)`` propagation cone are recomputed
    (:attr:`SdcReport.replayed_cells` counts them), and every heal is
    re-verified — a plane that still mismatches its seal, or a heal past
    ``max_heals``, raises :class:`SdcUnhealableError`.
    """

    def __init__(
        self,
        kernel,
        *,
        tier: str = "spot",
        seed: int = 0,
        sample_bands: int = 2,
        band_planes: int | None = None,
        max_heals: int = 3,
        report: SdcReport | None = None,
    ) -> None:
        if tier not in INTEGRITY_TIERS:
            raise ValueError(
                f"unknown integrity tier {tier!r}; known: "
                f"{', '.join(INTEGRITY_TIERS)}"
            )
        if sample_bands < 1:
            raise ValueError("sample_bands must be >= 1")
        if max_heals < 0:
            raise ValueError("max_heals must be >= 0")
        self.kernel = kernel
        self.tier = tier
        self.seed = seed
        self.sample_bands = sample_bands
        self.band_planes = band_planes
        self.max_heals = max_heals
        self.report = report if report is not None else SdcReport(tier=tier)
        self.report.tier = tier
        self._seals: list[int] | None = None

    @property
    def active(self) -> bool:
        return self.tier != "off"

    def invalidate(self) -> None:
        """Drop the seals (after a rollback/recovery rebinds the state)."""
        self._seals = None

    # -- sealing -------------------------------------------------------
    def seal(self, state: Field3D) -> None:
        """CRC-seal every plane of ``state`` for the next verify."""
        if not self.active:
            return
        self._seals = plane_crcs(state.data)
        self.report.sealed_planes += len(self._seals)

    def verify_seals(
        self, state: Field3D, done: int, good: Field3D, good_done: int
    ) -> Field3D:
        """Verify ``state`` against the last seals; heal any mismatch."""
        if not self.active or self._seals is None:
            return state
        self.report.checks += 1
        self._inc("sdc.checks", 1)
        crcs = plane_crcs(state.data)
        planes = [
            z for z, (a, b) in enumerate(zip(crcs, self._seals)) if a != b
        ]
        if not planes:
            return state
        self._detected(planes, done, channel="seal")
        self._heal(state, done, good, good_done, planes, reverify=True)
        return state

    # -- re-execution --------------------------------------------------
    def check_round(
        self,
        state: Field3D,
        done: int,
        good: Field3D,
        good_done: int,
        round_index: int,
    ) -> Field3D:
        """Re-execute bands from the trusted base and compare exactly."""
        if not self.active:
            return state
        s = done - good_done
        if s <= 0:
            return state
        self.report.checks += 1
        self._inc("sdc.checks", 1)
        nz = state.nz
        dirty = False
        if self.tier == "full":
            dirty = True  # exhaustive: always compare the full replay
        else:
            for core in self._bands(nz, round_index):
                replay, e0 = self._replay(good, core, s, nz)
                c0, c1 = core
                if not np.array_equal(
                    replay.data[:, c0 - e0 : c1 - e0], state.data[:, c0:c1]
                ):
                    dirty = True
                    break
        if not dirty:
            return state
        # derive (or at full tier, simply perform) the complete corrupted
        # set from one whole-grid replay, then patch surgically
        full, _ = self._replay(good, (0, nz), s, nz)
        planes = [
            z
            for z in range(nz)
            if not np.array_equal(full.data[:, z], state.data[:, z])
        ]
        if not planes:
            return state  # full tier, clean round
        self._detected(planes, done, channel="reexec")
        self._heal(
            state, done, good, good_done, planes, reverify=False,
            replay=full,
        )
        return state

    # -- internals -----------------------------------------------------
    def _bands(self, nz: int, round_index: int) -> list[tuple[int, int]]:
        """The deterministic pseudo-random Z-band sample for this round."""
        width = self.band_planes or max(1, nz // 8)
        starts = list(range(0, nz, width))
        bands = [(s0, min(s0 + width, nz)) for s0 in starts]
        rng = np.random.default_rng([abs(self.seed), round_index])
        take = min(self.sample_bands, len(bands))
        picked = rng.choice(len(bands), size=take, replace=False)
        return [bands[i] for i in sorted(int(i) for i in picked)]

    def _replay(
        self, good: Field3D, core: tuple[int, int], s: int, nz: int
    ) -> tuple[Field3D, int]:
        """Re-derive ``core``'s planes from the trusted base via the naive
        rung; returns (replayed sub-field, its global z offset)."""
        h = self.kernel.radius * s
        e0, e1 = loaded_extent(core, nz, h)
        sub = Field3D(np.ascontiguousarray(good.data[:, e0:e1]))
        out = run_naive(self.kernel.restricted_to(e0, e1), sub, s)
        self.report.verified_cells += (
            (e1 - e0) * good.ny * good.nx * s
        )
        return out, e0

    def _detected(self, planes: list[int], done: int, channel: str) -> None:
        self.report.detections += 1
        self.report.detected_planes += len(planes)
        self.report.detected_at.append(done)
        self._inc("sdc.detected", 1)
        with TRACE.span(
            "sdc_detected", channel=channel, step=done, planes=len(planes)
        ):
            pass

    def _heal(
        self,
        state: Field3D,
        done: int,
        good: Field3D,
        good_done: int,
        planes: list[int],
        *,
        reverify: bool,
        replay: Field3D | None = None,
    ) -> None:
        """Cone-replay the detected planes from the trusted base and patch.

        ``replay`` short-circuits the recompute when the caller already
        holds a whole-grid replay (the re-execution channel) — the cone
        cells are still what :attr:`SdcReport.replayed_cells` charges,
        since that is what a standalone surgical heal costs.
        """
        if self.report.heals >= self.max_heals:
            self.report.unhealable += 1
            raise SdcUnhealableError(
                f"corruption detected at step {done} but the heal budget "
                f"({self.max_heals}) is exhausted — persistent corruption, "
                "restart from a checkpoint on trusted hardware"
            )
        s = done - good_done
        if s < 0:
            self.report.unhealable += 1
            raise SdcUnhealableError(
                f"corruption detected at step {done} with no trusted base "
                f"at or before it (base is at step {good_done})"
            )
        nz, ny, nx = state.shape
        z0, z1 = min(planes), max(planes) + 1
        h = self.kernel.radius * s
        e0, e1 = loaded_extent((z0, z1), nz, h)
        with TRACE.span(
            "sdc_heal", step=done, planes=len(planes), z0=z0, z1=z1,
            extent=e1 - e0, replay_steps=s,
        ):
            if s == 0:
                # resting corruption right at the base step: the base holds
                # the exact planes, no replay needed
                state.data[:, z0:z1] = good.data[:, z0:z1]
                cells = (z1 - z0) * ny * nx
            else:
                off = 0  # a caller-supplied replay covers the whole grid
                if replay is None:
                    replay, off = self._replay(good, (z0, z1), s, nz)
                    # _replay charged these cells to verification; they are
                    # heal work, move them over
                    self.report.verified_cells -= (e1 - e0) * ny * nx * s
                state.data[:, z0:z1] = replay.data[:, z0 - off : z1 - off]
                cells = (e1 - e0) * ny * nx * s
        self.report.heals += 1
        self.report.replayed_cells += cells
        self._inc("sdc.healed", 1)
        self._inc("sdc.replayed_cells", cells)
        if reverify and self._seals is not None:
            crcs = plane_crcs(state.data[:, z0:z1])
            bad = [
                z0 + i
                for i, crc in enumerate(crcs)
                if crc != self._seals[z0 + i]
            ]
            if bad:
                self.report.unhealable += 1
                raise SdcUnhealableError(
                    f"plane(s) {bad} still fail seal verification after a "
                    "surgical heal — the sealed state itself was corrupt"
                )

    @staticmethod
    def _inc(counter: str, amount: int) -> None:
        if METRICS.armed and amount:
            METRICS.inc(counter, amount)


# ----------------------------------------------------------------------
# seeded chaos: flip/bitrot schedules, no-silent-corruption judgment
# ----------------------------------------------------------------------

@dataclass
class SdcChaosCase:
    """One seeded SDC soak iteration: run shape plus its fault schedule."""

    seed: int
    grid: int
    steps: int
    dim_t: int
    tier: str
    specs: list[str] = field(default_factory=list)
    #: rounds at which flip probes fire (every one is in-window: the
    #: guard's final seal verify covers flips after the last round)
    flip_rounds: list[int] = field(default_factory=list)
    bitrot: bool = False

    def describe(self) -> str:
        faults = ", ".join(self.specs) if self.specs else "no injected faults"
        return (
            f"seed {self.seed}: {self.grid}^3 x {self.steps} steps "
            f"(dim_T={self.dim_t}), tier {self.tier}; {faults}"
        )


@dataclass
class SdcChaosResult:
    """Outcome of one SDC soak iteration."""

    case: SdcChaosCase
    ok: bool
    bit_exact: bool
    error: str | None
    flips_fired: int
    flip_rounds_fired: int
    detections: int
    heals: int
    replayed_cells: int
    checks: int
    #: None when the schedule drew no bitrot; else "did the store refuse
    #: the rotted snapshot instead of silently restoring it"
    bitrot_detected: bool | None
    elapsed_s: float

    def to_dict(self) -> dict:
        doc = asdict(self)
        doc["case"] = asdict(self.case)
        return doc


def make_sdc_case(
    seed: int,
    *,
    grid: int = 20,
    steps: int = 8,
    dim_t: int = 2,
    tier: str = "full",
    schedules: tuple[str, ...] = SDC_SCHEDULES,
) -> SdcChaosCase:
    """Derive a deterministic flip/bitrot schedule from ``seed``.

    ``flip`` draws 1-2 probe rounds (each with 1-3 bits) over the run's
    rounds; ``bitrot`` rots the *last* checkpoint written, so the
    post-run restore attempt must refuse it.
    """
    unknown = set(schedules) - set(SDC_SCHEDULES)
    if unknown:
        raise ValueError(
            f"unknown sdc chaos schedule(s) {sorted(unknown)}; "
            f"known: {', '.join(SDC_SCHEDULES)}"
        )
    if tier not in INTEGRITY_TIERS or tier == "off":
        raise ValueError(f"sdc chaos needs an active tier, not {tier!r}")
    rng = np.random.default_rng(seed)
    rounds = -(-steps // dim_t)
    specs: list[str] = []
    flip_rounds: list[int] = []
    if "flip" in schedules:
        n_probes = int(rng.integers(1, 3))
        chosen = sorted(
            int(r)
            for r in rng.choice(rounds, size=min(n_probes, rounds),
                                replace=False)
        )
        for rnd in chosen:
            bits = int(rng.integers(1, 4))
            specs.append(f"memory.flip=0:{rnd}:{bits}")
            flip_rounds.append(rnd)
    bitrot = False
    saves = rounds - 1  # checkpoint_every=1 skips the final round
    if "bitrot" in schedules and saves >= 1:
        bitrot = True
        at = saves - 1
        specs.append("disk.bitrot" + (f"@{at}" if at else ""))
    return SdcChaosCase(
        seed=seed, grid=grid, steps=steps, dim_t=dim_t, tier=tier,
        specs=specs, flip_rounds=flip_rounds, bitrot=bitrot,
    )


def run_sdc_case(case: SdcChaosCase) -> SdcChaosResult:
    """One soak iteration: guarded 3.5D run under the schedule, judged on
    *no silent corruption*.

    ``ok`` requires: the run finishes (healed corruption is fine, that is
    the point), the final grid is bit-identical to the fault-free naive
    oracle, every flip probe-round was detected (at tier ``full`` this is
    a hard requirement; lower tiers report their rate), and a rotted
    checkpoint is refused at restore instead of silently trusted.
    """
    import shutil
    import tempfile

    from ..core.blocking35d import Blocking35D
    from ..stencils.seven_point import SevenPointStencil
    from .checkpoint import CheckpointError, CheckpointStore
    from .report import RunReport
    from .watchdog import GuardedSweep

    kernel = SevenPointStencil()
    fld = Field3D.random((case.grid,) * 3, dtype=np.float32, seed=case.seed)
    ref = run_naive(kernel, fld, case.steps)

    state_dir = tempfile.mkdtemp(prefix="repro-sdc-chaos-")
    store = CheckpointStore(Path(state_dir) / "sdc-chaos.npz")
    error = None
    out = None
    report = RunReport()
    fired_before = len(FAULTS.fired)
    t0 = time.perf_counter()
    try:
        ex = Blocking35D(
            kernel, dim_t=case.dim_t, tile_y=case.grid, tile_x=case.grid
        )
        guard = GuardedSweep(
            ex,
            round_steps=case.dim_t,
            sdc=case.tier,
            sdc_seed=case.seed,
            checkpoint=store,
            checkpoint_every=1,
            report=report,
        )
        try:
            with FAULTS.injected(*case.specs):
                out = guard.run(fld, case.steps)
        except ResilienceError as exc:
            error = f"{type(exc).__name__}: {exc}"
        flips = [
            detail
            for site, detail in FAULTS.fired[fired_before:]
            if site == "memory.flip"
        ]
        bitrot_detected: bool | None = None
        if case.bitrot:
            # the last snapshot written was rotted on disk; restoring it
            # must fail loudly (digest/quarantine), never silently succeed
            try:
                snap = store.load()
                bitrot_detected = snap is None  # quarantined, not trusted
            except CheckpointError:
                bitrot_detected = True
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)
    elapsed = time.perf_counter() - t0

    sdc = report.sdc if report.sdc is not None else SdcReport(tier=case.tier)
    bit_exact = out is not None and bool(np.array_equal(out.data, ref.data))
    flip_rounds_fired = len(set(flips))
    detected_all = sdc.detections >= flip_rounds_fired
    ok = (
        error is None
        and bit_exact
        and (case.tier != "full" or detected_all)
        and (bitrot_detected is not False)
    )
    return SdcChaosResult(
        case=case,
        ok=ok,
        bit_exact=bit_exact,
        error=error,
        flips_fired=len(flips),
        flip_rounds_fired=flip_rounds_fired,
        detections=sdc.detections,
        heals=sdc.heals,
        replayed_cells=sdc.replayed_cells,
        checks=sdc.checks,
        bitrot_detected=bitrot_detected if case.bitrot else None,
        elapsed_s=elapsed,
    )


def run_sdc_soak(
    seeds,
    *,
    grid: int = 20,
    steps: int = 8,
    dim_t: int = 2,
    tier: str = "full",
    schedules: tuple[str, ...] = SDC_SCHEDULES,
) -> list[SdcChaosResult]:
    """One :func:`run_sdc_case` per seed; callers inspect ``result.ok``."""
    return [
        run_sdc_case(
            make_sdc_case(
                seed, grid=grid, steps=steps, dim_t=dim_t, tier=tier,
                schedules=schedules,
            )
        )
        for seed in seeds
    ]


def write_sdc_bundle(result: SdcChaosResult, directory) -> Path:
    """Dump a failing seed's repro bundle (case.json + faults.txt)."""
    bundle = Path(directory) / f"sdc-seed-{result.case.seed}"
    bundle.mkdir(parents=True, exist_ok=True)
    with open(bundle / "case.json", "w", encoding="utf-8") as fh:
        json.dump(result.to_dict(), fh, indent=2)
        fh.write("\n")
    with open(bundle / "faults.txt", "w", encoding="utf-8") as fh:
        fh.write(",".join(result.case.specs) + "\n")
    return bundle
