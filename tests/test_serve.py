"""Tests for the serve daemon: admission, journal, lifecycle, wire protocol.

The serving layer's claims are behavioral, so the tests are scenario
driven: overload sheds with reasons (never hangs or grows unbounded),
deadlines and cancellation land at round boundaries with consistent
state, preemption and crash recovery resume bit-exactly, SIGTERM-style
drain loses zero accepted jobs, and a torn journal record — at *every*
byte boundary — is quarantined, never trusted and never fatal.
"""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.core import run_naive
from repro.resilience import FAULTS
from repro.serve import (
    AdmissionController,
    BoundedPriorityQueue,
    JobJournal,
    JobRecord,
    JobServer,
    JobSpec,
    ServeClient,
    ServeCore,
    ServeUnavailable,
    TokenBucket,
)
from repro.serve.server import grid_sha256, make_field, make_kernel


@pytest.fixture(autouse=True)
def _clean_faults():
    FAULTS.disarm()
    yield
    FAULTS.disarm()


def wait_terminal(core: ServeCore, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(r.terminal for r in core.jobs()):
            return
        time.sleep(0.01)
    raise AssertionError(
        f"jobs never drained: {[(r.id, r.status) for r in core.jobs()]}"
    )


def reference_sha(spec: JobSpec) -> str:
    out = run_naive(make_kernel(spec), make_field(spec), spec.steps)
    return grid_sha256(out.data)


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=lambda: clock[0])
        assert [bucket.try_take() for _ in range(4)] == [
            True, True, True, False,
        ]
        clock[0] = 1.0  # 2 tokens refilled
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = [0.0]
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=lambda: clock[0])
        clock[0] = 60.0
        assert bucket.available() == pytest.approx(2.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)


class TestBoundedPriorityQueue:
    def test_priority_then_fifo_order(self):
        q = BoundedPriorityQueue(8)
        q.push("low", 5)
        q.push("hi-a", 1)
        q.push("hi-b", 1)
        assert [q.pop(0) for _ in range(3)] == ["hi-a", "hi-b", "low"]

    def test_capacity_is_hard(self):
        q = BoundedPriorityQueue(1)
        q.push("a", 1)
        with pytest.raises(OverflowError):
            q.push("b", 1)

    def test_force_push_bypasses_cap_for_requeues(self):
        q = BoundedPriorityQueue(1)
        q.push("a", 1)
        q.push("requeued", 0, force=True)  # an accepted job is never lost
        assert len(q) == 2
        assert q.pop(0) == "requeued"

    def test_shed_lowest_and_pop_timeout(self):
        q = BoundedPriorityQueue(4)
        q.push("a", 1)
        q.push("b", 9)
        assert q.shed_lowest() == "b"
        assert q.pop(0) == "a"
        assert q.pop(timeout=0.01) is None  # bounded wait, no hang

    def test_remove_predicate(self):
        q = BoundedPriorityQueue(4)
        q.push("a", 1)
        q.push("b", 2)
        assert q.remove(lambda item: item == "a") == ["a"]
        assert q.snapshot() == ["b"]


class TestAdmission:
    def _record(self, **kw):
        return JobRecord(id="x", spec=JobSpec(**kw), submitted_s=0.0)

    def test_rejects_with_stable_reasons(self):
        clock = [0.0]
        ctrl = AdmissionController(
            rate=1.0, burst=1.0, tenant_quota=1, clock=lambda: clock[0]
        )
        q = BoundedPriorityQueue(2)
        d = ctrl.admit(self._record(), q, 0, draining=True)
        assert not d.ok and "draining" in d.reason
        d = ctrl.admit(self._record(grid=1), q, 0)
        assert not d.ok and "invalid job" in d.reason
        d = ctrl.admit(self._record(), q, 5)
        assert not d.ok and "tenant quota exceeded" in d.reason
        assert ctrl.admit(self._record(), q, 0).ok
        d = ctrl.admit(self._record(), q, 0)
        assert not d.ok and "rate limit exceeded" in d.reason

    def test_full_queue_displaces_strictly_better_only(self):
        ctrl = AdmissionController(rate=100.0, burst=100.0)
        q = BoundedPriorityQueue(1)
        q.push("victim", 5)
        d = ctrl.admit(self._record(priority=5), q, 0)  # equal: no shed
        assert not d.ok and "queue full" in d.reason
        d = ctrl.admit(self._record(priority=1), q, 0)
        assert d.ok and d.shed == "victim"


class TestJournal:
    def test_roundtrip_and_seq_continuity(self, tmp_path):
        j = JobJournal(tmp_path / "j.jsonl", fsync=False)
        j.append("accepted", id="j1")
        j.append("done", id="j1", status="done")
        j.close()
        j2 = JobJournal(tmp_path / "j.jsonl", fsync=False)
        replay = j2.replay()
        assert [r["ev"] for r in replay.records] == ["accepted", "done"]
        assert replay.quarantined_records == 0
        rec = j2.append("accepted", id="j2")
        assert rec["seq"] == 3  # continues past the replayed records

    def test_torn_tail_at_every_byte_boundary(self, tmp_path):
        """Truncate the last record at every byte: always quarantined."""
        path = tmp_path / "j.jsonl"
        j = JobJournal(path, fsync=False)
        j.append("accepted", id="j1", job={"grid": 16})
        j.append("done", id="j1", status="done", sha256="ab" * 32)
        j.close()
        raw = path.read_bytes()
        first_len = raw.find(b"\n") + 1
        for cut in range(first_len, len(raw) - 1):
            path.write_bytes(raw[:cut])
            (path.with_name(path.name + ".corrupt")).unlink(missing_ok=True)
            replay = JobJournal(path, fsync=False).replay()
            assert [r["ev"] for r in replay.records] == ["accepted"], (
                f"cut at byte {cut} leaked a partial record"
            )
            if cut > first_len:
                assert replay.quarantined_records == 1
                assert replay.truncated_tail
            # quarantine-and-continue: the journal is compacted to the
            # good prefix and appending afterwards works
            j3 = JobJournal(path, fsync=False)
            j3.replay()
            j3.append("recovered", id="j1")
            j3.close()
            assert len(
                JobJournal(path, fsync=False).replay().records
            ) == (2 if cut > first_len else 2)

    def test_midfile_damage_quarantined_once(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = JobJournal(path, fsync=False)
        for i in range(3):
            j.append("accepted", id=f"j{i}")
        j.close()
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"seq": 2, "ev": "accepted", "crc": 1}\n'  # bad crc
        path.write_bytes(b"".join(lines))
        replay = JobJournal(path, fsync=False).replay()
        assert replay.quarantined_records == 1
        assert len(replay.records) == 2
        corrupt = path.with_name(path.name + ".corrupt")
        assert corrupt.exists()
        # the file was compacted: a second replay finds nothing to do
        replay2 = JobJournal(path, fsync=False).replay()
        assert replay2.quarantined_records == 0
        assert len(replay2.records) == 2

    def test_tear_fault_fires_but_never_on_accepted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = JobJournal(path, fsync=False)
        with FAULTS.injected("serve.journal:*"):
            j.append("accepted", id="j1")  # commit point: exempt
            j.append("done", id="j1")  # torn
        j.close()
        replay = JobJournal(path, fsync=False).replay()
        assert [r["ev"] for r in replay.records] == ["accepted"]
        assert replay.truncated_tail


class TestServeCore:
    def test_completes_bit_exact_with_warm_plans(self, tmp_path):
        core = ServeCore(tmp_path / "s", workers=2, fsync=False)
        core.start()
        spec = JobSpec(grid=12, steps=6, dim_t=2, tile=8)
        ids = [core.submit(spec.to_dict())["id"] for _ in range(3)]
        wait_terminal(core)
        ref = reference_sha(spec)
        for jid in ids:
            record = core.status(jid)
            assert record.status == "done" and record.code == 0
            assert record.sha256 == ref
        assert core.plans.stats()["hits"] >= 1
        assert core.drain()

    def test_invalid_and_rate_limited_submits_rejected(self, tmp_path):
        core = ServeCore(tmp_path / "s", workers=1, rate=0.001, burst=1.0,
                         fsync=False)
        core.start()
        bad = core.submit({"grid": 2})
        assert not bad["ok"] and "invalid job" in bad["reason"]
        assert core.submit(JobSpec(grid=8, steps=1).to_dict())["ok"]
        limited = core.submit(JobSpec(grid=8, steps=1).to_dict())
        assert not limited["ok"] and "rate limit" in limited["reason"]
        wait_terminal(core)
        assert core.drain()

    def test_deadline_storm_fails_with_reason(self, tmp_path):
        core = ServeCore(tmp_path / "s", workers=1, fsync=False)
        core.start()
        with FAULTS.injected("serve.deadline"):
            jid = core.submit(
                JobSpec(grid=12, steps=4, deadline_s=60.0).to_dict()
            )["id"]
            wait_terminal(core)
        record = core.status(jid)
        assert record.status == "failed" and record.code == 4
        assert "deadline exceeded" in record.reason
        assert core.counters["deadline_misses"] == 1
        assert core.drain()

    def test_cancel_queued_and_running(self, tmp_path):
        core = ServeCore(tmp_path / "s", workers=1, fsync=False)
        core.start()
        running = core.submit(JobSpec(grid=16, steps=400, dim_t=2,
                                      verify=False).to_dict())["id"]
        queued = core.submit(JobSpec(grid=16, steps=400, dim_t=2, seed=1,
                                     verify=False).to_dict())["id"]
        time.sleep(0.1)
        assert core.cancel(queued)["status"] == "cancelled"
        core.cancel(running)
        wait_terminal(core)
        rec = core.status(running)
        assert rec.status == "cancelled" and "cancelled by client" in rec.reason
        assert 0 < rec.done_steps < 400  # stopped at a round boundary
        assert core.drain()

    def test_overload_displaces_lowest_priority_with_reason(self, tmp_path):
        core = ServeCore(tmp_path / "s", workers=1, queue_cap=2, fsync=False)
        core.start()
        # block the single worker with a long job, then fill the queue
        blocker = core.submit(JobSpec(grid=16, steps=2000, priority=0,
                                      verify=False).to_dict())["id"]
        time.sleep(0.05)
        low = [core.submit(JobSpec(grid=10, steps=2, priority=7, seed=s,
                                   verify=False).to_dict())["id"]
               for s in range(2)]
        reject = core.submit(
            JobSpec(grid=10, steps=2, priority=7, seed=9).to_dict()
        )
        assert not reject["ok"] and "queue full" in reject["reason"]
        better = core.submit(
            JobSpec(grid=10, steps=2, priority=1, verify=False).to_dict()
        )
        assert better["ok"] and better["shed"] in low
        shed = core.status(better["shed"])
        assert shed.status == "shed" and shed.code == 2
        assert "displaced by a higher-priority job" in shed.reason
        core.cancel(blocker)
        wait_terminal(core)
        assert core.drain()

    def test_amber_overload_sheds_verification_as_degraded(self, tmp_path):
        core = ServeCore(tmp_path / "s", workers=1, queue_cap=2,
                         degrade_at=0.0, fsync=False)
        core.start()  # degrade_at=0: any queue depth counts as amber
        jid = core.submit(JobSpec(grid=12, steps=4).to_dict())["id"]
        core.submit(JobSpec(grid=12, steps=4, seed=1).to_dict())
        wait_terminal(core)
        record = core.status(jid)
        assert record.status == "degraded" and record.code == 3
        assert any("verification shed" in d for d in record.degradations)
        assert record.sha256 == reference_sha(record.spec)  # still correct
        assert core.drain()

    def test_preemption_resumes_bit_exact(self, tmp_path):
        core = ServeCore(tmp_path / "s", workers=1, fsync=False)
        core.start()
        spec = JobSpec(grid=16, steps=60, dim_t=2, priority=5, verify=False)
        victim = core.submit(spec.to_dict())["id"]
        time.sleep(0.05)
        hi = core.submit(JobSpec(grid=10, steps=2, priority=0,
                                 verify=False).to_dict())["id"]
        wait_terminal(core)
        vrec, hrec = core.status(victim), core.status(hi)
        assert hrec.status == "done"
        assert vrec.status == "done"
        assert vrec.preemptions >= 1
        assert vrec.sha256 == reference_sha(spec)  # preempt/resume exact
        assert core.drain()

    def test_accept_drop_is_explicit_and_retryable(self, tmp_path):
        core = ServeCore(tmp_path / "s", workers=1, fsync=False)
        core.start()
        with FAULTS.injected("serve.accept"):
            reply = core.submit(JobSpec(grid=10, steps=2).to_dict())
        assert not reply["ok"] and reply["error"] == "dropped"
        assert "safe to retry" in reply["reason"]
        assert core.counters["dropped"] == 1
        # nothing journaled, so a restart sees no ghost job
        retry = core.submit(JobSpec(grid=10, steps=2).to_dict())
        assert retry["ok"]
        wait_terminal(core)
        assert core.drain()

    def test_drain_zero_accepted_job_loss(self, tmp_path):
        core = ServeCore(tmp_path / "s", workers=2, fsync=False)
        core.start()
        ids = [
            core.submit(JobSpec(grid=12, steps=8, seed=s,
                                verify=False).to_dict())["id"]
            for s in range(6)
        ]
        assert core.drain(timeout=60.0)  # True == every accepted job terminal
        for jid in ids:
            assert core.status(jid).terminal
        refused = core.submit(JobSpec(grid=10, steps=2).to_dict())
        assert not refused["ok"] and "draining" in refused["reason"]

    def test_kill_recovers_from_journal_and_checkpoint(self, tmp_path):
        state = tmp_path / "s"
        core = ServeCore(state, workers=1, checkpoint_every_rounds=1,
                         fsync=False)
        core.start()
        spec = JobSpec(grid=16, steps=80, dim_t=2, verify=False)
        jid = core.submit(spec.to_dict())["id"]
        done_id = core.submit(JobSpec(grid=10, steps=2, priority=0,
                                      verify=False).to_dict())["id"]
        time.sleep(0.3)  # let rounds and checkpoints happen
        core.kill()  # SIGKILL stand-in: no terminal records written

        core2 = ServeCore(state, workers=1, fsync=False)
        core2.start()
        assert core2.counters["recovered"] >= 1
        wait_terminal(core2, timeout=60.0)
        rec = core2.status(jid)
        assert rec.status == "done"
        assert rec.sha256 == reference_sha(spec)  # crash/resume bit-exact
        # the short job either finished pre-kill (replayed as done) or
        # re-ran; both are terminal, neither is lost
        assert core2.status(done_id).terminal
        assert core2.drain()


class TestWireProtocol:
    @pytest.fixture()
    def server(self, tmp_path):
        core = ServeCore(tmp_path / "s", workers=1, fsync=False)
        core.start()
        srv = JobServer(core, tmp_path / "sock")
        srv.start()
        yield srv
        srv.stop()
        core.drain(timeout=10.0)

    def test_end_to_end_submit_wait_jobs(self, server, tmp_path):
        client = ServeClient(tmp_path / "sock")
        assert client.ping()["version"] == 1
        spec = JobSpec(grid=12, steps=4)
        reply = client.submit(spec.to_dict())
        assert reply["ok"]
        job = client.wait(reply["id"], timeout=30.0)["job"]
        assert job["status"] == "done" and job["code"] == 0
        assert job["sha256"] == reference_sha(spec)
        listing = client.jobs()["jobs"]
        assert [j["id"] for j in listing] == [reply["id"]]
        stats = client.stats()["stats"]
        assert stats["counters"]["accepted"] == 1

    def test_unknown_op_and_missing_job(self, server, tmp_path):
        client = ServeClient(tmp_path / "sock")
        bad = client.request("frobnicate")
        assert not bad["ok"] and "unknown op" in bad["reason"]
        lost = client.status("j999999")
        assert not lost["ok"] and lost["error"] == "not-found"

    def test_daemon_gone_is_typed(self, tmp_path):
        client = ServeClient(tmp_path / "nowhere.sock", timeout=1.0)
        with pytest.raises(ServeUnavailable, match="repro serve"):
            client.ping()


class TestServeChaos:
    def test_quick_soak_two_seeds(self):
        from repro.serve.chaos import run_serve_soak

        results = run_serve_soak(range(2), jobs=8, grid=10, steps=4)
        for r in results:
            assert r.ok, (
                f"seed {r.case.seed}: {r.error}, "
                f"{r.hash_mismatches} mismatches, "
                f"{r.non_terminal} non-terminal"
            )
        # the seed range must actually exercise kill/recovery
        assert any(r.recovered > 0 for r in results)


class TestGuardedSweepStop:
    def test_stop_event_interrupts_checkpoints_and_resumes(self, tmp_path):
        from repro.core import Blocking35D
        from repro.resilience import (
            CheckpointStore,
            GuardedSweep,
            SweepInterruptedError,
        )
        from repro.stencils import Field3D, SevenPointStencil

        kernel = SevenPointStencil()
        field = Field3D.random((16, 16, 16), dtype=np.float32, seed=0)
        store = CheckpointStore(tmp_path / "ck.npz")
        stop = threading.Event()

        class StopAfterTwo:
            """Executor shim that trips the stop event mid-sweep."""

            def __init__(self):
                self.inner = Blocking35D(kernel, 2, 8, 8)
                self.dim_t = 2
                self.rounds = 0

            def run(self, f, steps, traffic=None):
                self.rounds += 1
                if self.rounds == 2:
                    stop.set()
                return self.inner.run(f, steps, traffic)

        guard = GuardedSweep(StopAfterTwo(), checkpoint=store, stop=stop)
        with pytest.raises(SweepInterruptedError) as err:
            guard.run(field, 10)
        assert err.value.step == 4  # two dim_T=2 rounds ran
        assert err.value.checkpointed

        resumed = GuardedSweep(Blocking35D(kernel, 2, 8, 8), checkpoint=store)
        out = resumed.run(field, 10, resume=True)
        ref = run_naive(kernel, field, 10)
        assert np.array_equal(out.data, ref.data)

    def test_stop_without_checkpoint_reports_unsaved(self):
        from repro.core import Blocking35D
        from repro.resilience import GuardedSweep, SweepInterruptedError
        from repro.stencils import Field3D, SevenPointStencil

        stop = threading.Event()
        stop.set()  # interrupt before the first round
        guard = GuardedSweep(
            Blocking35D(SevenPointStencil(), 2, 8, 8), stop=stop
        )
        field = Field3D.random((12, 12, 12), dtype=np.float32, seed=0)
        with pytest.raises(SweepInterruptedError) as err:
            guard.run(field, 4)
        assert err.value.step == 0
        assert not err.value.checkpointed


class TestTuningCachePrune:
    def _fill(self, cache, n):
        for i in range(n):
            cache.put(f"7pt|backend-{i}|float32|cube", {"dim_t": 2, "tile": 8})

    def test_put_evicts_lru_beyond_cap(self, tmp_path):
        from repro.core.autotune import TuningCache

        cache = TuningCache(tmp_path / "t.json", max_entries=3)
        self._fill(cache, 5)
        data = json.loads((tmp_path / "t.json").read_text())
        assert len(data) == 3
        assert any("backend-4" in k for k in data)  # newest survives
        assert not any("backend-0" in k for k in data)  # oldest evicted

    def test_env_var_caps_entries(self, tmp_path, monkeypatch):
        from repro.core.autotune import REPRO_TUNE_CACHE_MAX_ENV, TuningCache

        monkeypatch.setenv(REPRO_TUNE_CACHE_MAX_ENV, "2")
        cache = TuningCache(tmp_path / "t.json")
        assert cache.max_entries == 2
        self._fill(cache, 4)
        assert len(json.loads((tmp_path / "t.json").read_text())) == 2

    def test_prune_method_and_cli(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main
        from repro.core.autotune import REPRO_TUNE_CACHE_ENV, TuningCache

        path = tmp_path / "t.json"
        cache = TuningCache(path, max_entries=100)
        self._fill(cache, 6)
        removed, remaining = TuningCache(path).prune(max_entries=2)
        assert (removed, remaining) == (4, 2)
        monkeypatch.setenv(REPRO_TUNE_CACHE_ENV, str(path))
        rc = main(["tune", "--prune", "--cache-max", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 entry removed, 1 remaining" in out


class TestCLI:
    def test_faults_grouped_by_subsystem(self, capsys):
        from repro.cli import main

        rc = main(["faults"])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.index("fault spec grammar") < out.index("serve daemon")
        assert "serve daemon (admission/journal/deadlines):" in out
        for site in ("serve.accept", "serve.stall", "serve.journal",
                     "serve.deadline"):
            assert site in out
        # the grammar appears once, at the top, not per group
        assert out.count("site[=arg][:times][@after]") == 1

    def test_serve_chaos_cli(self, capsys):
        from repro.cli import main

        rc = main(["chaos", "--target", "serve", "--seeds", "1", "--jobs",
                   "6", "--grid", "10", "--steps", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "serve soak" in out and "clean" in out

    def test_submit_against_in_process_daemon(self, tmp_path, capsys):
        from repro.cli import main

        core = ServeCore(tmp_path / "s", workers=1, fsync=False)
        core.start()
        server = JobServer(core, tmp_path / "sock")
        server.start()
        try:
            rc = main(["submit", "--socket", str(tmp_path / "sock"),
                       "--grid", "12", "--steps", "4", "--wait"])
            out = capsys.readouterr().out
            assert rc == 0
            assert "accepted" in out and "result sha" in out
            rc = main(["jobs", "--socket", str(tmp_path / "sock")])
            out = capsys.readouterr().out
            assert rc == 0 and "done" in out
        finally:
            server.stop()
            core.drain(timeout=10.0)

    def test_submit_daemon_gone_exits_4(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["submit", "--socket", str(tmp_path / "gone.sock")])
        assert rc == 4
        assert "repro serve" in capsys.readouterr().err

    def test_run_sigint_checkpoints_and_exits_4(self, tmp_path, capsys):
        from repro.cli import main

        ck = tmp_path / "ck.npz"
        timer = threading.Timer(
            1.0, lambda: os.kill(os.getpid(), __import__("signal").SIGINT)
        )
        timer.start()
        try:
            rc = main(["run", "--grid", "24", "--steps", "4000", "--dim-t",
                       "2", "--tile", "8", "--checkpoint", str(ck),
                       "--no-check"])
        finally:
            timer.cancel()
        err = capsys.readouterr().err
        assert rc == 4
        assert "interrupted" in err and "final checkpoint written" in err
        assert ck.exists()
