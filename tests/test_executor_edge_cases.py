"""Edge-case and error-path tests across all executors."""

import numpy as np
import pytest

from repro.core import (
    Blocking3D,
    Blocking4D,
    Blocking25D,
    Blocking35D,
    TrafficStats,
    build_schedule,
    run_3_5d,
    run_naive,
)
from repro.core.schedule import schedule_to_text
from repro.stencils import Field3D, SevenPointStencil, star_stencil


@pytest.fixture
def seven():
    return SevenPointStencil()


class TestMinimalGrids:
    def test_smallest_possible_grid(self, seven):
        """3^3 is the smallest radius-1 grid: a single interior point."""
        f = Field3D.random((3, 3, 3), seed=0)
        ref = run_naive(seven, f, 3)
        out = run_3_5d(seven, f, 3, 2, 3, 3, validate=True)
        assert np.array_equal(out.data, ref.data)
        # only the center moves
        changed = np.argwhere(out.data != f.data)
        assert all((idx[1:] == [1, 1, 1]).all() for idx in changed)

    def test_radius2_minimal(self):
        k = star_stencil(2, center=0.3, arm=0.02)
        f = Field3D.random((5, 5, 5), seed=1)
        ref = run_naive(k, f, 2)
        out = run_3_5d(k, f, 2, 1, 5, 5)
        assert np.array_equal(out.data, ref.data)

    def test_grid_too_small_rejected(self, seven):
        with pytest.raises(ValueError):
            run_naive(seven, Field3D.random((2, 3, 3), seed=2), 1)

    def test_extreme_aspect_ratios(self, seven):
        for shape in [(3, 3, 40), (40, 3, 3), (3, 40, 3)]:
            f = Field3D.random(shape, seed=sum(shape))
            ref = run_naive(seven, f, 3)
            out = run_3_5d(seven, f, 3, 2, 16, 16)
            assert np.array_equal(out.data, ref.data), shape


class TestTileEdgeCases:
    def test_minimum_legal_tile(self, seven):
        """tile = 2*R*dim_T + 1: single-cell cores."""
        f = Field3D.random((8, 12, 12), seed=3)
        ref = run_naive(seven, f, 4)
        out = run_3_5d(seven, f, 4, 2, 5, 5, validate=True)
        assert np.array_equal(out.data, ref.data)

    def test_tile_below_minimum_rejected(self, seven):
        f = Field3D.random((8, 12, 12), seed=4)
        with pytest.raises(ValueError, match="ghost"):
            run_3_5d(seven, f, 2, 2, 4, 4)

    def test_tile_larger_than_grid(self, seven):
        f = Field3D.random((8, 10, 10), seed=5)
        ref = run_naive(seven, f, 2)
        out = run_3_5d(seven, f, 2, 2, 1000, 1000)
        assert np.array_equal(out.data, ref.data)

    def test_asymmetric_tiles(self, seven):
        f = Field3D.random((10, 30, 20), seed=6)
        ref = run_naive(seven, f, 4)
        out = run_3_5d(seven, f, 4, 2, 25, 7)
        assert np.array_equal(out.data, ref.data)


class TestDimTEdgeCases:
    def test_dim_t_exceeds_steps(self, seven):
        """dim_T = 5 but only 2 steps: a single short round."""
        f = Field3D.random((14, 16, 16), seed=7)
        ref = run_naive(seven, f, 2)
        out = run_3_5d(seven, f, 2, 5, 16, 16)
        assert np.array_equal(out.data, ref.data)

    def test_dim_t_one_equals_25d(self, seven):
        f = Field3D.random((10, 14, 14), seed=8)
        a = run_3_5d(seven, f, 3, 1, 10, 10, concurrent=False)
        b = Blocking25D(seven, 10, 10).run(f, 3)
        assert np.array_equal(a.data, b.data)

    def test_invalid_dim_t(self, seven):
        with pytest.raises(ValueError):
            Blocking35D(seven, 0, 10, 10)
        with pytest.raises(ValueError):
            Blocking4D(seven, 0, 10, 10, 10)


class TestDtypePreservation:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_dtype_flows_through(self, seven, dtype):
        f = Field3D.random((8, 10, 10), dtype=dtype, seed=9)
        out = run_3_5d(seven, f, 2, 2, 8, 8)
        assert out.dtype == dtype
        assert np.array_equal(out.data, run_naive(seven, f, 2).data)

    def test_sp_dp_genuinely_differ(self, seven):
        base = Field3D.random((8, 8, 8), dtype=np.float64, seed=10)
        f32 = Field3D(base.data.astype(np.float32))
        out64 = run_naive(seven, base, 4)
        out32 = run_naive(seven, f32, 4)
        assert not np.array_equal(out64.data.astype(np.float32), out32.data)
        np.testing.assert_allclose(out64.data, out32.data, rtol=1e-5)


class TestErrorPaths:
    def test_negative_steps_everywhere(self, seven):
        f = Field3D.random((6, 6, 6), seed=11)
        for runner in (
            lambda: run_naive(seven, f, -1),
            lambda: Blocking25D(seven, 6, 6).run(f, -1),
            lambda: Blocking3D(seven, 6, 6, 6).run(f, -1),
            lambda: Blocking4D(seven, 1, 6, 6, 6).run(f, -1),
            lambda: Blocking35D(seven, 1, 6, 6).run(f, -1),
        ):
            with pytest.raises(ValueError):
                runner()

    def test_zero_steps_everywhere(self, seven):
        f = Field3D.random((6, 6, 6), seed=12)
        for ex in (
            Blocking25D(seven, 6, 6),
            Blocking3D(seven, 6, 6, 6),
            Blocking4D(seven, 2, 6, 6, 6),
            Blocking35D(seven, 2, 6, 6),
        ):
            out = ex.run(f, 0)
            assert np.array_equal(out.data, f.data)
            assert not np.shares_memory(out.data, f.data)


class TestTrafficNotes:
    def test_notes_populated(self, seven):
        f = Field3D.random((8, 20, 20), seed=13)
        t = TrafficStats()
        run_3_5d(seven, f, 2, 2, 12, 12, traffic=t)
        assert t.notes["dim_t"] == 2
        # axis 20: cores of 8 + 8 + 2 -> 3 tiles per axis, 9 total
        assert t.notes["tiles_per_round"] == 9

    def test_plane_counters(self, seven):
        f = Field3D.random((8, 10, 10), seed=14)
        t = TrafficStats()
        run_3_5d(seven, f, 2, 2, 10, 10, traffic=t)
        assert t.plane_loads == 8  # every plane loaded once (single tile)
        assert t.plane_stores == 6  # interior planes stored once


class TestScheduleVisualizer:
    def test_renders_all_instances(self):
        s = build_schedule(nz=8, radius=1, dim_t=2)
        text = schedule_to_text(s)
        assert "t'=0 load" in text
        assert "t'=1 comp" in text
        assert "t'=2 store" in text

    def test_lag_visible(self):
        """In iteration k, instance t handles plane k - lag*t."""
        s = build_schedule(nz=10, radius=1, dim_t=2)
        text = schedule_to_text(s, max_iterations=8)
        lines = text.splitlines()
        load_row = next(l for l in lines if "load" in l)
        store_row = next(l for l in lines if "store" in l)
        # at iteration 5 the loader is at plane 5, the storer at 5 - 2*2 = 1
        assert "    5" in load_row
        assert "    1" in store_row

    def test_truncation(self):
        s = build_schedule(nz=30, radius=1, dim_t=2)
        short = schedule_to_text(s, max_iterations=3)
        full = schedule_to_text(s)
        assert len(short) < len(full)
