"""Fused z-iteration sweep kernels (the 3.5D hot-path layer).

The blocking executors express one z-iteration of the paper's Figure 3(a)
as ``dim_T + 1`` separate schedule steps, each a Python-level kernel call.
That is the right granularity for *correctness* (every step is independently
testable against the naive reference) but the wrong one for *speed*: on the
NumPy substrate the interpreter dispatch around each step — region lookups,
ring-liveness checks, footprint validation, slice construction — costs as
much as the arithmetic itself.  AN5D and the wavefront-diamond line of work
(PAPERS.md) both fuse the whole temporal chain into one compiled sweep; this
module provides that layering on top of the PR 1 backend registry.

Two fused engines share one integration seam (``FusedSweepKernel``):

``fused-numpy``
    A *prebound instruction plan*: at tile-bind time every schedule step of
    every z-iteration is lowered to a short list of ``(ufunc, a, b, out)``
    instructions whose operands are pre-sliced views of the ring buffers,
    shell planes and source/destination grids.  Executing one z-iteration is
    then a single ``run_iteration`` call that replays ~5 steps' worth of
    prebound ufuncs — the per-time-instance loop is fused and all per-step
    interpreter work (slicing, validation, dict lookups) is hoisted out of
    the sweep entirely.
``fused-numba``
    Optional ``@njit`` kernels that execute an *entire* z-iteration — all
    ``dim_T`` ring-plane updates plus the load and store seam planes — in a
    single compiled call per z-step, with ``prange`` row parallelism for the
    serial executor.  Available for the 7-point, 27-point, generic-taps and
    variable-coefficient stencils; other kernels fall back to the numpy
    instruction plan.

Both engines preserve the executors' contracts exactly: identical operand
pairing and reduction order (bit-exact against the naive reference),
identical boundary-strip refresh semantics, identical traffic accounting,
and row-span restriction so :class:`~repro.runtime.parallel35d.ParallelBlocking35D`
workers can invoke the fused kernel on their span while keeping the paper's
one-barrier-per-z property.
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import Schedule, StepKind
from ..resilience.faultinject import FAULTS
from ..stencils.generic import GenericStencil
from ..stencils.seven_point import SevenPointStencil
from ..stencils.twentyseven_point import TwentySevenPointStencil
from ..stencils.variable import VariableCoefficientStencil
from .backends import InplaceKernel

__all__ = [
    "FusedSweepKernel",
    "FusedNumbaSweepKernel",
    "fused_engine_for",
]

# 27-point neighbor groups, in the exact order the reference kernel sums them.
from ..stencils.twentyseven_point import _CORNERS, _EDGES, _FACES  # noqa: E402


def _copy(a, b, out=None):
    np.copyto(a, b)


def _zero(a, b=None, out=None):
    a.fill(0)


def _invoke(a, b=None, out=None):
    a()


class FusedSweepKernel(InplaceKernel):
    """Backend adapter adding a fused z-iteration sweep to any kernel.

    Outside the 3.5D executors this behaves exactly like
    :class:`InplaceKernel` (so ``--backend fused-numpy`` works with every
    executor); inside them, :meth:`tile_runner` supplies a per-tile runner
    that executes whole z-iterations in one call.
    """

    engine = "numpy"

    # ------------------------------------------------------------------
    def padded_for(self, halo, shape):
        inner = self.inner.padded_for(halo, shape)
        return self if inner is self.inner else type(self)(inner)

    def restricted_to(self, zlo, zhi):
        inner = self.inner.restricted_to(zlo, zhi)
        return self if inner is self.inner else type(self)(inner)

    # ------------------------------------------------------------------
    def tile_runner(self, executor, src, dst, ctx, schedule: Schedule, round_t: int):
        """The (cached) fused runner for one tile context and buffer pair.

        Runners are cached on the tile context and matched by *identity* of
        the source/destination arrays and schedule (the double-buffer swap
        between rounds alternates between two runners).  Returns ``None``
        when no fused execution is possible (never happens for the numpy
        engine, which has a universal fallback).
        """
        FAULTS.fire("backend.compute", detail=f"fused-{self.engine}")
        cache = ctx.fused
        if cache is None:
            cache = ctx.fused = []
        for runner in cache:
            if (
                runner.src_data is src.data
                and runner.dst_data is dst.data
                and runner.schedule is schedule
                and runner.round_t == round_t
            ):
                runner.sync(ctx)
                return runner
        runner = self._build_runner(executor, src, dst, ctx, schedule, round_t)
        if runner is not None:
            cache.append(runner)
            # ping/pong plus one spare pair; older (stale-buffer) runners
            # are dropped so repeated run() calls cannot accumulate state
            del cache[:-4]
        return runner

    def _build_runner(self, executor, src, dst, ctx, schedule, round_t):
        return _NumpyFusedRunner(self, executor, src, dst, ctx, schedule, round_t)


class FusedNumbaSweepKernel(FusedSweepKernel):
    """Numba engine: one compiled call per z-iteration (njit + prange)."""

    engine = "numba"

    def _build_runner(self, executor, src, dst, ctx, schedule, round_t):
        runner = _NumbaFusedRunner.build(
            self, executor, src, dst, ctx, schedule, round_t
        )
        if runner is not None:
            return runner
        # unsupported kernel/layout: the numpy instruction plan is still fused
        return _NumpyFusedRunner(self, executor, src, dst, ctx, schedule, round_t)


def fused_engine_for(kernel) -> str | None:
    """The fused engine a wrapped kernel will use, or ``None`` if unfused."""
    return getattr(kernel, "engine", None) if hasattr(kernel, "tile_runner") else None


# ======================================================================
# shared bind-time geometry
# ======================================================================


class _RunnerBase:
    """Geometry and plane bookkeeping shared by both fused engines."""

    def __init__(self, kernel, executor, src, dst, ctx, schedule, round_t):
        self.kernel = kernel
        self.inner = kernel.inner
        self.src_data = src.data
        self.dst_data = dst.data
        self.schedule = schedule
        self.round_t = round_t
        self.radius = r = kernel.radius
        self.nz, self.ny, self.nx = src.shape
        (self.ey0, self.ey1), (self.ex0, self.ex1) = ctx.ey, ctx.ex
        self.eny = self.ey1 - self.ey0
        self.enx = self.ex1 - self.ex0
        self.esize = ctx.esize
        self.ops_per_update = kernel.ops_per_update
        self.shell = ctx.shell_planes
        self.rings = [ctx.rings.ring(t).data for t in range(round_t)]
        self.slots = ctx.rings.slots
        self.regions = executor.instance_regions(ctx, src.shape, round_t)
        iters = schedule.iterations()
        self.iteration_keys = sorted(iters)
        self._steps = {
            k: tuple((s.kind, s.t, s.z) for s in steps) for k, steps in iters.items()
        }
        # boundary-strip geometry (mirrors Blocking35D._fill_xy_strips)
        self.sy_lo = r - self.ey0 if self.ey0 < r else 0
        self.sy_hi = (self.ny - r) - self.ey0 if self.ey1 > self.ny - r else self.eny
        self.sx_lo = r - self.ex0 if self.ex0 < r else 0
        self.sx_hi = self.ex1 - (self.nx - r) if self.ex1 > self.nx - r else 0
        self.full_plane = (
            self.ey0 == 0
            and self.ey1 == self.ny
            and self.ex0 == 0
            and self.ex1 == self.nx
        )

    def sync(self, ctx) -> None:
        """Refresh any engine-private copies of per-run tile state."""

    # -- plane views ----------------------------------------------------
    def _plane3(self, t: int, z: int) -> np.ndarray:
        """Plane ``z`` as read by instance ``t+1`` — ``(ncomp, eny, enx)``."""
        p = self.shell.get(z)
        if p is not None:
            return p
        return self.rings[t][z % self.slots]

    def _is_shell(self, z: int) -> bool:
        return z in self.shell

    def _rows_local(self, rows) -> tuple[int, int]:
        if rows is None:
            return 0, self.eny
        return (
            max(0, rows[0] - self.ey0),
            min(self.eny, rows[1] - self.ey0),
        )


# ======================================================================
# numpy engine: prebound instruction plans
# ======================================================================


class _NumpyFusedRunner(_RunnerBase):
    """Executes z-iterations by replaying prebound ufunc instructions.

    A *plan* (one per row span, built lazily on the thread that will run it
    so scratch comes from that thread's arena pool) maps each iteration key
    to a flat list of ``(fn, a, b, out)`` instructions plus an aggregate
    traffic record.  ``run_iteration`` replays the list — all slicing,
    region arithmetic, shell lookups and liveness reasoning happened once,
    at bind time.
    """

    def __init__(self, kernel, executor, src, dst, ctx, schedule, round_t):
        super().__init__(kernel, executor, src, dst, ctx, schedule, round_t)
        self.arena = kernel.arena
        self._plans: dict = {}
        inner = self.inner
        # Non-contractive kernels can amplify throwaway seam lanes past the
        # FP range round over round (see SevenPointStencil); suppress the
        # spurious warnings then.  np.errstate is not re-enterable, so a
        # fresh context is created per iteration when needed.
        self._suppress_fp = not getattr(inner, "_seam_contractive", False)
        ncomp1 = self.src_data.shape[0] == 1
        contig = (
            self.src_data.flags.c_contiguous and self.dst_data.flags.c_contiguous
        )
        self._impl = None
        if ncomp1 and contig:
            if type(inner) is SevenPointStencil:
                self._impl = "7pt"
            elif type(inner) is TwentySevenPointStencil:
                self._impl = "27pt"
            elif type(inner) is GenericStencil:
                self._impl = "generic"
            elif type(inner) is VariableCoefficientStencil:
                self._impl = "varco"
        if ncomp1 and contig:
            nz, ny, nx = self.nz, self.ny, self.nx
            self._src2 = self.src_data[0]
            self._dst2 = self.dst_data[0]
            self._srcflat = self.src_data[0].reshape(nz, ny * nx)
            self._dstflat = self.dst_data[0].reshape(nz, ny * nx)

    # ------------------------------------------------------------------
    def run_iteration(self, k: int, rows=None, traffic=None) -> None:
        plan = self._plans.get(rows)
        if plan is None:
            plan = self._plans[rows] = self._build_plan(rows)
        instrs, stats = plan
        ops = instrs.get(k)
        if ops:
            if self._suppress_fp:
                with np.errstate(all="ignore"):
                    for fn, a, b, out in ops:
                        fn(a, b, out)
            else:
                for fn, a, b, out in ops:
                    fn(a, b, out)
        if traffic is not None:
            rec = stats.get(k)
            if rec is not None:
                rb, rp, wb, wp, pts = rec
                if rb or rp:
                    traffic.read(rb, planes=rp)
                if wb or wp:
                    traffic.write(wb, planes=wp)
                if pts:
                    traffic.update(pts, self.ops_per_update)

    # ------------------------------------------------------------------
    # plan construction
    # ------------------------------------------------------------------
    def _build_plan(self, rows):
        instrs: dict[int, list] = {}
        stats: dict[int, tuple] = {}
        for k in self.iteration_keys:
            ops: list = []
            rb = rp = wb = wp = pts = 0
            for kind, t, z in self._steps[k]:
                if kind is StepKind.LOAD:
                    got = self._emit_load(ops, z, rows)
                    if got:
                        rb += got
                        rp += 1 if rows is None else 0
                elif kind is StepKind.STORE:
                    got = self._emit_store(ops, t, z, rows)
                    if got:
                        wb += got * self.esize
                        wp += 1
                        pts += got
                else:
                    pts += self._emit_compute(ops, t, z, rows)
            if ops:
                instrs[k] = ops
            if rb or wb or pts:
                stats[k] = (rb, rp, wb, wp, pts)
        return instrs, stats

    def _emit_load(self, ops, z, rows) -> int:
        if self._is_shell(z):
            return 0  # resident since _load_shell_planes
        ly0, ly1 = self._rows_local(rows)
        if ly0 >= ly1:
            return 0
        dst = self._plane3(0, z)[:, ly0:ly1, :]
        gy0, gy1 = self.ey0 + ly0, self.ey0 + ly1
        src = self.src_data[:, z, gy0:gy1, self.ex0 : self.ex1]
        ops.append((_copy, dst, src, None))
        return (ly1 - ly0) * self.enx * self.esize

    def _clip_region(self, t, rows):
        (gy0, gy1), (gx0, gx1) = self.regions[t]
        if rows is not None:
            gy0, gy1 = max(gy0, rows[0]), min(gy1, rows[1])
        return gy0, gy1, gx0, gx1

    def _emit_compute(self, ops, t, z, rows) -> int:
        """Ring-target stencil step plus its boundary-strip refresh."""
        gy0, gy1, gx0, gx1 = self._clip_region(t, rows)
        out3 = self.rings[t][z % self.slots]
        prev3 = self._plane3(t - 1, z)
        points = 0
        if gy0 < gy1:
            a0, a1 = gy0 - self.ey0, gy1 - self.ey0
            x0, x1 = gx0 - self.ex0, gx1 - self.ex0
            srcs = [
                self._plane3(t - 1, z + dz)
                for dz in range(-self.radius, self.radius + 1)
            ]
            self._emit_stencil(
                ops, out3, srcs, a0, a1, x0, x1, z, direct_seam=True
            )
            points = (gy1 - gy0) * (gx1 - gx0)
        self._emit_strips(ops, out3, prev3, rows)
        return points

    def _emit_store(self, ops, t, z, rows) -> int:
        gy0, gy1, gx0, gx1 = self._clip_region(t, rows)
        if gy0 >= gy1:
            return 0
        a0, a1 = gy0 - self.ey0, gy1 - self.ey0
        x0, x1 = gx0 - self.ex0, gx1 - self.ex0
        srcs = [
            self._plane3(t - 1, z + dz)
            for dz in range(-self.radius, self.radius + 1)
        ]
        if self.full_plane and self._impl is not None:
            # direct flat store: compute into the destination plane's own
            # rows, then restore the constant x-boundary columns the flat
            # seam lanes clobbered (the y-boundary rows are never written).
            self._emit_stencil(
                ops, None, srcs, a0, a1, x0, x1, z, direct_seam=False,
                dst_plane=z,
            )
            r = self.radius
            if r:
                ops.append((
                    _copy,
                    self._dst2[z, a0:a1, :r],
                    self._src2[z, a0:a1, :r],
                    None,
                ))
                ops.append((
                    _copy,
                    self._dst2[z, a0:a1, self.nx - r :],
                    self._src2[z, a0:a1, self.nx - r :],
                    None,
                ))
        else:
            out3 = self.dst_data[:, z, self.ey0 : self.ey1, self.ex0 : self.ex1]
            self._emit_region_stencil(ops, out3, srcs, a0, a1, x0, x1, z)
        return (gy1 - gy0) * (gx1 - gx0)

    def _emit_strips(self, ops, out3, prev3, rows) -> None:
        ly0, ly1 = self._rows_local(rows)
        if ly0 >= ly1:
            return
        if self.sy_lo:
            hi = min(self.sy_lo, ly1)
            if hi > ly0:
                ops.append((_copy, out3[:, ly0:hi, :], prev3[:, ly0:hi, :], None))
        if self.sy_hi < self.eny:
            lo = max(self.sy_hi, ly0)
            if ly1 > lo:
                ops.append((_copy, out3[:, lo:ly1, :], prev3[:, lo:ly1, :], None))
        if self.sx_lo:
            ops.append((
                _copy,
                out3[:, ly0:ly1, : self.sx_lo],
                prev3[:, ly0:ly1, : self.sx_lo],
                None,
            ))
        if self.sx_hi:
            ops.append((
                _copy,
                out3[:, ly0:ly1, -self.sx_hi :],
                prev3[:, ly0:ly1, -self.sx_hi :],
                None,
            ))

    # ------------------------------------------------------------------
    # stencil lowering (each mirrors the kernel's compute_plane(_inplace)
    # operand pairing exactly, so results stay bit-identical)
    # ------------------------------------------------------------------
    def _emit_stencil(self, ops, out3, srcs, a0, a1, x0, x1, z, *,
                      direct_seam, dst_plane=None):
        """Seam-tolerant target (ring plane, or the flat dst row span)."""
        impl = self._impl
        if impl is None:
            self._emit_fallback(
                ops, out3, srcs, a0, a1, x0, x1, z, seam=direct_seam
            )
            return
        if dst_plane is not None:
            oflat = self._dstflat[dst_plane]
        else:
            oflat = out3[0].reshape(-1)
        flats = [p[0].reshape(-1) for p in srcs]
        if impl == "7pt":
            self._lower_7pt(ops, oflat, flats, a0, a1)
        elif impl == "27pt":
            self._lower_27pt(ops, oflat, flats, a0, a1, x0, x1)
        elif impl == "generic":
            self._lower_generic(ops, oflat, flats, a0, a1, x0, x1)
        else:  # varco has no flat seam path; write the exact region
            target = (
                self.dst_data[:, dst_plane, self.ey0 : self.ey1, self.ex0 : self.ex1]
                if dst_plane is not None
                else out3
            )
            self._lower_varco(ops, target, srcs, a0, a1, x0, x1, z)

    def _emit_region_stencil(self, ops, out3, srcs, a0, a1, x0, x1, z):
        """Exact-region target (strided store view): 2-D lowering."""
        impl = self._impl
        if impl == "7pt":
            self._lower_7pt_2d(ops, out3, srcs, a0, a1, x0, x1)
        elif impl == "27pt":
            self._lower_27pt_2d(ops, out3, srcs, a0, a1, x0, x1)
        elif impl == "generic":
            self._lower_generic_2d(ops, out3, srcs, a0, a1, x0, x1)
        elif impl == "varco":
            self._lower_varco(ops, out3, srcs, a0, a1, x0, x1, z)
        else:
            self._emit_fallback(ops, out3, srcs, a0, a1, x0, x1, z, seam=False)

    def _emit_fallback(self, ops, out3, srcs, a0, a1, x0, x1, z, *, seam):
        """Any kernel: one prebound in-place call per step (t-loop fused)."""
        kernel, arena = self.inner, self.arena
        gy0, gx0 = self.ey0, self.ex0

        def step(out3=out3, srcs=srcs, yr=(a0, a1), xr=(x0, x1), z=z, seam=seam):
            kernel.compute_plane_inplace(
                out3, srcs, yr, xr, z, gy0, gx0, arena=arena, seam_writable=seam
            )

        ops.append((_invoke, step, None, None))

    # -- 7-point -------------------------------------------------------
    def _scratch(self, tag, n):
        return self.arena.get(tag, (n,), self.src_data.dtype)

    def _lower_7pt(self, ops, oflat, flats, a0, a1):
        nx = self.enx
        s, e = a0 * nx, a1 * nx
        fb, fm, fa = flats
        acc = oflat[s:e]
        tmp = self._scratch("fused.tmp", e - s)
        dtype = self.src_data.dtype.type
        alpha, beta = dtype(self.inner.alpha), dtype(self.inner.beta)
        ops += [
            (np.add, fb[s:e], fa[s:e], acc),
            (np.add, fm[s - nx : e - nx], fm[s + nx : e + nx], tmp),
            (np.add, acc, tmp, acc),
            (np.add, fm[s - 1 : e - 1], fm[s + 1 : e + 1], tmp),
            (np.add, acc, tmp, acc),
            (np.multiply, fm[s:e], alpha, tmp),
            (np.multiply, acc, beta, acc),
            (np.add, tmp, acc, acc),
        ]

    def _lower_7pt_2d(self, ops, out3, srcs, a0, a1, x0, x1):
        below, mid, above = (p[0] for p in srcs)
        ys, xs = slice(a0, a1), slice(x0, x1)
        shape = (a1 - a0, x1 - x0)
        acc = self.arena.get("fused.acc2d", shape, self.src_data.dtype)
        tmp = self.arena.get("fused.tmp2d", shape, self.src_data.dtype)
        dtype = self.src_data.dtype.type
        alpha, beta = dtype(self.inner.alpha), dtype(self.inner.beta)
        ops += [
            (np.add, below[ys, xs], above[ys, xs], acc),
            (np.add, mid[a0 - 1 : a1 - 1, xs], mid[a0 + 1 : a1 + 1, xs], tmp),
            (np.add, acc, tmp, acc),
            (np.add, mid[ys, x0 - 1 : x1 - 1], mid[ys, x0 + 1 : x1 + 1], tmp),
            (np.add, acc, tmp, acc),
            (np.multiply, mid[ys, xs], alpha, tmp),
            (np.multiply, acc, beta, acc),
            (np.add, tmp, acc, out3[0, ys, xs]),
        ]

    # -- 27-point ------------------------------------------------------
    def _lower_27pt(self, ops, oflat, flats, a0, a1, x0, x1):
        nx = self.enx
        s0 = a0 * nx + x0
        e0 = (a1 - 1) * nx + x1
        result = oflat[s0:e0]
        group = self._scratch("fused27.grp", e0 - s0)
        dtype = self.src_data.dtype.type
        inner = self.inner

        def window(dz, dy, dx):
            off = dy * nx + dx
            return flats[dz + 1][s0 + off : e0 + off]

        ops.append((np.multiply, window(0, 0, 0), dtype(inner.center), result))
        for offsets, w in (
            (_FACES, dtype(inner.face)),
            (_EDGES, dtype(inner.edge)),
            (_CORNERS, dtype(inner.corner)),
        ):
            ops.append((_copy, group, window(*offsets[0]), None))
            for off in offsets[1:]:
                ops.append((np.add, group, window(*off), group))
            ops.append((np.multiply, group, w, group))
            ops.append((np.add, result, group, result))

    def _lower_27pt_2d(self, ops, out3, srcs, a0, a1, x0, x1):
        dtype = self.src_data.dtype.type
        inner = self.inner
        shape = (a1 - a0, x1 - x0)
        group = self.arena.get("fused27.grp2d", shape, self.src_data.dtype)
        result = out3[0, a0:a1, x0:x1]

        def window(dz, dy, dx):
            return srcs[dz + 1][0][a0 + dy : a1 + dy, x0 + dx : x1 + dx]

        ops.append((np.multiply, window(0, 0, 0), dtype(inner.center), result))
        for offsets, w in (
            (_FACES, dtype(inner.face)),
            (_EDGES, dtype(inner.edge)),
            (_CORNERS, dtype(inner.corner)),
        ):
            ops.append((_copy, group, window(*offsets[0]), None))
            for off in offsets[1:]:
                ops.append((np.add, group, window(*off), group))
            ops.append((np.multiply, group, w, group))
            ops.append((np.add, result, group, result))

    # -- generic taps --------------------------------------------------
    def _lower_generic(self, ops, oflat, flats, a0, a1, x0, x1):
        nx = self.enx
        r = self.radius
        s0 = a0 * nx + x0
        e0 = (a1 - 1) * nx + x1
        acc = oflat[s0:e0]
        tmp = self._scratch("fusedg.tmp", e0 - s0)
        dtype = self.src_data.dtype.type
        inner = self.inner
        ops.append((_zero, acc, None, None))
        for dz, dy, dx in inner._order:
            w = dtype(inner.taps[(dz, dy, dx)])
            off = dy * nx + dx
            ops.append((np.multiply, flats[dz + r][s0 + off : e0 + off], w, tmp))
            ops.append((np.add, acc, tmp, acc))

    def _lower_generic_2d(self, ops, out3, srcs, a0, a1, x0, x1):
        r = self.radius
        dtype = self.src_data.dtype.type
        inner = self.inner
        tmp = self.arena.get(
            "fusedg.tmp2d", (a1 - a0, x1 - x0), self.src_data.dtype
        )
        acc = out3[0, a0:a1, x0:x1]
        ops.append((_zero, acc, None, None))
        for dz, dy, dx in inner._order:
            w = dtype(inner.taps[(dz, dy, dx)])
            window = srcs[dz + r][0][a0 + dy : a1 + dy, x0 + dx : x1 + dx]
            ops.append((np.multiply, window, w, tmp))
            ops.append((np.add, acc, tmp, acc))

    # -- variable coefficients ------------------------------------------
    def _lower_varco(self, ops, out3, srcs, a0, a1, x0, x1, z):
        inner = self.inner
        gy0, gy1 = self.ey0 + a0, self.ey0 + a1
        gx0, gx1 = self.ex0 + x0, self.ex0 + x1
        a_view = inner.alpha[z, gy0:gy1, gx0:gx1]
        b_view = inner.beta[z, gy0:gy1, gx0:gx1]
        below, mid, above = (p[0] for p in srcs)
        ys, xs = slice(a0, a1), slice(x0, x1)
        shape = (a1 - a0, x1 - x0)
        acc = self.arena.get("fusedv.acc", shape, self.src_data.dtype)
        tmp = self.arena.get("fusedv.tmp", shape, self.src_data.dtype)
        ops += [
            (np.add, below[ys, xs], above[ys, xs], acc),
            (np.add, acc, mid[a0 - 1 : a1 - 1, xs], acc),
            (np.add, acc, mid[a0 + 1 : a1 + 1, xs], acc),
            (np.add, acc, mid[ys, x0 - 1 : x1 - 1], acc),
            (np.add, acc, mid[ys, x0 + 1 : x1 + 1], acc),
            (np.multiply, a_view, mid[ys, xs], tmp),
            (np.multiply, b_view, acc, acc),
            (np.add, tmp, acc, out3[0, ys, xs]),
        ]


# ======================================================================
# numba engine: one compiled call per z-iteration
# ======================================================================

_JIT_CACHE: dict = {}


def _numba_iteration_kernels(kind: str, parallel: bool):  # pragma: no cover
    """Compile (once per kind/parallel flag) the fused z-iteration kernel."""
    key = (kind, parallel)
    fn = _JIT_CACHE.get(key)
    if fn is not None:
        return fn
    import numba

    jit = numba.njit(parallel=parallel, cache=False)
    yrange = numba.prange if parallel else range

    if kind == "7pt":

        @jit
        def run(rings, shell, src3, dst3, meta, nsteps, ey0, ex0, nz, slots,
                sy_lo, sy_hi, sx_lo, sx_hi, taps_off, taps_w, coef_a, coef_b,
                alpha, beta):
            r = 1
            eny, enx = rings.shape[2], rings.shape[3]
            for i in range(nsteps):
                kind_c = meta[i, 0]
                t = meta[i, 1]
                z = meta[i, 2]
                ly0 = meta[i, 3]
                ly1 = meta[i, 4]
                lx0 = meta[i, 5]
                lx1 = meta[i, 6]
                if kind_c == 0:  # load
                    out = rings[0, z % slots]
                    for y in yrange(ly0, ly1):
                        for x in range(enx):
                            out[y, x] = src3[z, ey0 + y, ex0 + x]
                    continue
                # source planes for instance t reading t-1
                if z - 1 < r:
                    below = shell[z - 1]
                elif z - 1 >= nz - r:
                    below = shell[r + (z - 1) - (nz - r)]
                else:
                    below = rings[t - 1, (z - 1) % slots]
                mid = rings[t - 1, z % slots]
                if z + 1 >= nz - r:
                    above = shell[r + (z + 1) - (nz - r)]
                else:
                    above = rings[t - 1, (z + 1) % slots]
                if kind_c == 2:  # store
                    if ly0 < ly1:
                        for y in yrange(ly0, ly1):
                            for x in range(lx0, lx1):
                                acc = (
                                    (below[y, x] + above[y, x])
                                    + (mid[y - 1, x] + mid[y + 1, x])
                                ) + (mid[y, x - 1] + mid[y, x + 1])
                                dst3[z, ey0 + y, ex0 + x] = (
                                    alpha * mid[y, x] + beta * acc
                                )
                    continue
                out = rings[t, z % slots]
                if ly0 < ly1:
                    for y in yrange(ly0, ly1):
                        for x in range(lx0, lx1):
                            acc = (
                                (below[y, x] + above[y, x])
                                + (mid[y - 1, x] + mid[y + 1, x])
                            ) + (mid[y, x - 1] + mid[y, x + 1])
                            out[y, x] = alpha * mid[y, x] + beta * acc
                # boundary strips: constant in time, refreshed from t-1
                sy0 = meta[i, 7]
                sy1 = meta[i, 8]
                for y in range(sy0, min(sy_lo, sy1)):
                    for x in range(enx):
                        out[y, x] = mid[y, x]
                for y in range(max(sy_hi, sy0), sy1):
                    for x in range(enx):
                        out[y, x] = mid[y, x]
                for y in range(sy0, sy1):
                    for x in range(sx_lo):
                        out[y, x] = mid[y, x]
                    for x in range(enx - sx_hi, enx):
                        out[y, x] = mid[y, x]

    elif kind == "taps":

        @jit
        def run(rings, shell, src3, dst3, meta, nsteps, ey0, ex0, nz, slots,
                sy_lo, sy_hi, sx_lo, sx_hi, taps_off, taps_w, coef_a, coef_b,
                alpha, beta):
            enx = rings.shape[3]
            r = shell.shape[0] // 2
            ntaps = taps_off.shape[0]
            for i in range(nsteps):
                kind_c = meta[i, 0]
                t = meta[i, 1]
                z = meta[i, 2]
                ly0 = meta[i, 3]
                ly1 = meta[i, 4]
                lx0 = meta[i, 5]
                lx1 = meta[i, 6]
                if kind_c == 0:  # load
                    out = rings[0, z % slots]
                    for y in yrange(ly0, ly1):
                        for x in range(enx):
                            out[y, x] = src3[z, ey0 + y, ex0 + x]
                    continue
                mid = rings[t - 1, z % slots]
                store = kind_c == 2
                if ly0 < ly1:
                    for y in yrange(ly0, ly1):
                        for x in range(lx0, lx1):
                            # accumulate taps in the reference's sorted
                            # order, reading each source plane through the
                            # same shell substitution as the executor
                            zz = z + taps_off[0, 0]
                            yy = y + taps_off[0, 1]
                            xx = x + taps_off[0, 2]
                            if zz < r:
                                v = shell[zz, yy, xx]
                            elif zz >= nz - r:
                                v = shell[r + zz - (nz - r), yy, xx]
                            else:
                                v = rings[t - 1, zz % slots, yy, xx]
                            acc = taps_w[0] * v
                            for j in range(1, ntaps):
                                zz = z + taps_off[j, 0]
                                yy = y + taps_off[j, 1]
                                xx = x + taps_off[j, 2]
                                if zz < r:
                                    v = shell[zz, yy, xx]
                                elif zz >= nz - r:
                                    v = shell[r + zz - (nz - r), yy, xx]
                                else:
                                    v = rings[t - 1, zz % slots, yy, xx]
                                acc += taps_w[j] * v
                            if store:
                                dst3[z, ey0 + y, ex0 + x] = acc
                            else:
                                rings[t, z % slots, y, x] = acc
                if store:
                    continue
                out = rings[t, z % slots]
                sy0 = meta[i, 7]
                sy1 = meta[i, 8]
                for y in range(sy0, min(sy_lo, sy1)):
                    for x in range(enx):
                        out[y, x] = mid[y, x]
                for y in range(max(sy_hi, sy0), sy1):
                    for x in range(enx):
                        out[y, x] = mid[y, x]
                for y in range(sy0, sy1):
                    for x in range(sx_lo):
                        out[y, x] = mid[y, x]
                    for x in range(enx - sx_hi, enx):
                        out[y, x] = mid[y, x]

    elif kind == "varco":

        @jit
        def run(rings, shell, src3, dst3, meta, nsteps, ey0, ex0, nz, slots,
                sy_lo, sy_hi, sx_lo, sx_hi, taps_off, taps_w, coef_a, coef_b,
                alpha, beta):
            r = 1
            enx = rings.shape[3]
            for i in range(nsteps):
                kind_c = meta[i, 0]
                t = meta[i, 1]
                z = meta[i, 2]
                ly0 = meta[i, 3]
                ly1 = meta[i, 4]
                lx0 = meta[i, 5]
                lx1 = meta[i, 6]
                if kind_c == 0:
                    out = rings[0, z % slots]
                    for y in yrange(ly0, ly1):
                        for x in range(enx):
                            out[y, x] = src3[z, ey0 + y, ex0 + x]
                    continue
                if z - 1 < r:
                    below = shell[z - 1]
                elif z - 1 >= nz - r:
                    below = shell[r + (z - 1) - (nz - r)]
                else:
                    below = rings[t - 1, (z - 1) % slots]
                mid = rings[t - 1, z % slots]
                if z + 1 >= nz - r:
                    above = shell[r + (z + 1) - (nz - r)]
                else:
                    above = rings[t - 1, (z + 1) % slots]
                store = kind_c == 2
                if ly0 < ly1:
                    for y in yrange(ly0, ly1):
                        for x in range(lx0, lx1):
                            acc = below[y, x] + above[y, x]
                            acc += mid[y - 1, x]
                            acc += mid[y + 1, x]
                            acc += mid[y, x - 1]
                            acc += mid[y, x + 1]
                            v = (
                                coef_a[z, ey0 + y, ex0 + x] * mid[y, x]
                                + coef_b[z, ey0 + y, ex0 + x] * acc
                            )
                            if store:
                                dst3[z, ey0 + y, ex0 + x] = v
                            else:
                                rings[t, z % slots, y, x] = v
                if store:
                    continue
                out = rings[t, z % slots]
                sy0 = meta[i, 7]
                sy1 = meta[i, 8]
                for y in range(sy0, min(sy_lo, sy1)):
                    for x in range(enx):
                        out[y, x] = mid[y, x]
                for y in range(max(sy_hi, sy0), sy1):
                    for x in range(enx):
                        out[y, x] = mid[y, x]
                for y in range(sy0, sy1):
                    for x in range(sx_lo):
                        out[y, x] = mid[y, x]
                    for x in range(enx - sx_hi, enx):
                        out[y, x] = mid[y, x]

    elif kind == "27pt":

        @jit
        def run(rings, shell, src3, dst3, meta, nsteps, ey0, ex0, nz, slots,
                sy_lo, sy_hi, sx_lo, sx_hi, taps_off, taps_w, coef_a, coef_b,
                alpha, beta):
            # taps_off holds the 26 neighbor offsets grouped faces | edges |
            # corners (6, 12, 8) in the reference summation order; taps_w
            # holds (center, face, edge, corner).
            r = 1
            eny, enx = rings.shape[2], rings.shape[3]
            center = taps_w[0]
            wface = taps_w[1]
            wedge = taps_w[2]
            wcorner = taps_w[3]
            for i in range(nsteps):
                kind_c = meta[i, 0]
                t = meta[i, 1]
                z = meta[i, 2]
                ly0 = meta[i, 3]
                ly1 = meta[i, 4]
                lx0 = meta[i, 5]
                lx1 = meta[i, 6]
                if kind_c == 0:
                    out = rings[0, z % slots]
                    for y in yrange(ly0, ly1):
                        for x in range(enx):
                            out[y, x] = src3[z, ey0 + y, ex0 + x]
                    continue
                if z - 1 < r:
                    below = shell[z - 1]
                elif z - 1 >= nz - r:
                    below = shell[r + (z - 1) - (nz - r)]
                else:
                    below = rings[t - 1, (z - 1) % slots]
                mid = rings[t - 1, z % slots]
                if z + 1 >= nz - r:
                    above = shell[r + (z + 1) - (nz - r)]
                else:
                    above = rings[t - 1, (z + 1) % slots]
                store = kind_c == 2
                if ly0 < ly1:
                    for y in yrange(ly0, ly1):
                        for x in range(lx0, lx1):
                            # group sums start from their first offset and
                            # accumulate in the reference generation order
                            sface = below[y + taps_off[0, 1], x + taps_off[0, 2]]
                            for j in range(1, 6):
                                dz = taps_off[j, 0]
                                yy = y + taps_off[j, 1]
                                xx = x + taps_off[j, 2]
                                if dz < 0:
                                    sface += below[yy, xx]
                                elif dz > 0:
                                    sface += above[yy, xx]
                                else:
                                    sface += mid[yy, xx]
                            dz = taps_off[6, 0]
                            yy = y + taps_off[6, 1]
                            xx = x + taps_off[6, 2]
                            if dz < 0:
                                sedge = below[yy, xx]
                            elif dz > 0:
                                sedge = above[yy, xx]
                            else:
                                sedge = mid[yy, xx]
                            for j in range(7, 18):
                                dz = taps_off[j, 0]
                                yy = y + taps_off[j, 1]
                                xx = x + taps_off[j, 2]
                                if dz < 0:
                                    sedge += below[yy, xx]
                                elif dz > 0:
                                    sedge += above[yy, xx]
                                else:
                                    sedge += mid[yy, xx]
                            dz = taps_off[18, 0]
                            yy = y + taps_off[18, 1]
                            xx = x + taps_off[18, 2]
                            if dz < 0:
                                scorner = below[yy, xx]
                            else:
                                scorner = above[yy, xx]
                            for j in range(19, 26):
                                dz = taps_off[j, 0]
                                yy = y + taps_off[j, 1]
                                xx = x + taps_off[j, 2]
                                if dz < 0:
                                    scorner += below[yy, xx]
                                else:
                                    scorner += above[yy, xx]
                            v = center * mid[y, x]
                            v += wface * sface
                            v += wedge * sedge
                            v += wcorner * scorner
                            if store:
                                dst3[z, ey0 + y, ex0 + x] = v
                            else:
                                rings[t, z % slots, y, x] = v
                if store:
                    continue
                out = rings[t, z % slots]
                sy0 = meta[i, 7]
                sy1 = meta[i, 8]
                for y in range(sy0, min(sy_lo, sy1)):
                    for x in range(enx):
                        out[y, x] = mid[y, x]
                for y in range(max(sy_hi, sy0), sy1):
                    for x in range(enx):
                        out[y, x] = mid[y, x]
                for y in range(sy0, sy1):
                    for x in range(sx_lo):
                        out[y, x] = mid[y, x]
                    for x in range(enx - sx_hi, enx):
                        out[y, x] = mid[y, x]

    else:  # pragma: no cover - guarded by callers
        raise ValueError(kind)

    _JIT_CACHE[key] = run
    return run


_KIND_CODE = {StepKind.LOAD: 0, StepKind.COMPUTE: 1, StepKind.STORE: 2}


class _NumbaFusedRunner(_RunnerBase):  # pragma: no cover - requires numba
    """One jitted call per z-iteration over dedicated stacked ring storage."""

    @classmethod
    def build(cls, kernel, executor, src, dst, ctx, schedule, round_t):
        inner = kernel.inner
        if src.data.shape[0] != 1 or not src.data.flags.c_contiguous:
            return None
        if not dst.data.flags.c_contiguous:
            return None
        if type(inner) is SevenPointStencil:
            kind = "7pt"
        elif type(inner) is TwentySevenPointStencil:
            kind = "27pt"
        elif type(inner) is GenericStencil:
            kind = "taps"
        elif type(inner) is VariableCoefficientStencil:
            # mixed-precision coefficient fields follow NumPy promotion in
            # the reference; only same-dtype fields are bit-safe to jit
            if inner.alpha.dtype != src.data.dtype:
                return None
            kind = "varco"
        else:
            return None
        return cls(kernel, executor, src, dst, ctx, schedule, round_t, kind)

    def __init__(self, kernel, executor, src, dst, ctx, schedule, round_t, kind):
        super().__init__(kernel, executor, src, dst, ctx, schedule, round_t)
        self.kind = kind
        inner = self.inner
        dtype = src.data.dtype
        r = self.radius
        # dedicated stacked storage the jitted kernels index directly
        self._ringstack = np.zeros(
            (round_t, self.slots, self.eny, self.enx), dtype=dtype
        )
        self._shellstack = np.zeros((2 * r, self.eny, self.enx), dtype=dtype)
        self._shell_token = None
        self.sync(ctx)
        self._src3 = src.data[0]
        self._dst3 = dst.data[0]
        scalar = dtype.type
        zf = np.zeros(0, dtype=dtype)
        zi = np.zeros((0, 3), dtype=np.int64)
        z3 = np.zeros((0, 0, 0), dtype=dtype)
        self._alpha = scalar(0)
        self._beta = scalar(0)
        self._taps_off, self._taps_w = zi, zf
        self._coef_a, self._coef_b = z3, z3
        if kind == "7pt":
            self._alpha = scalar(inner.alpha)
            self._beta = scalar(inner.beta)
        elif kind == "27pt":
            order = list(_FACES) + list(_EDGES) + list(_CORNERS)
            self._taps_off = np.array(order, dtype=np.int64)
            self._taps_w = np.array(
                [inner.center, inner.face, inner.edge, inner.corner], dtype=dtype
            )
        elif kind == "taps":
            self._taps_off = np.array(inner._order, dtype=np.int64)
            self._taps_w = np.array(
                [inner.taps[o] for o in inner._order], dtype=dtype
            )
        else:  # varco
            self._coef_a = np.ascontiguousarray(inner.alpha, dtype=dtype)
            self._coef_b = np.ascontiguousarray(inner.beta, dtype=dtype)
        self._meta: dict = {}  # rows -> {k: (meta_array, nsteps, stats)}
        self._fns: dict = {}

    # ------------------------------------------------------------------
    def sync(self, ctx) -> None:
        """(Re)copy the tile's constant shell planes into stacked storage."""
        if ctx.shell_token is self._shell_token and self._shell_token is not None:
            return
        r = self.radius
        for z, plane in ctx.shell_planes.items():
            idx = z if z < r else r + z - (self.nz - r)
            np.copyto(self._shellstack[idx], plane[0])
        self._shell_token = ctx.shell_token

    # ------------------------------------------------------------------
    def _fn(self, parallel: bool):
        fn = self._fns.get(parallel)
        if fn is None:
            fn = self._fns[parallel] = _numba_iteration_kernels(
                self.kind, parallel
            )
        return fn

    def _build_meta(self, rows):
        per_k = {}
        sly0, sly1 = self._rows_local(rows)
        for k in self.iteration_keys:
            steps = self._steps[k]
            meta = np.zeros((len(steps), 9), dtype=np.int64)
            n = 0
            rb = rp = wb = wp = pts = 0
            for kind, t, z in steps:
                if kind is StepKind.LOAD:
                    if self._is_shell(z):
                        continue
                    ly0, ly1 = sly0, sly1
                    if ly0 >= ly1:
                        continue
                    meta[n, :7] = (0, 0, z, ly0, ly1, 0, self.enx)
                    n += 1
                    rb += (ly1 - ly0) * self.enx * self.esize
                    rp += 1 if rows is None else 0
                    continue
                gy0, gy1, gx0, gx1 = self._clip(t, rows)
                a0, a1 = gy0 - self.ey0, gy1 - self.ey0
                lx0, lx1 = gx0 - self.ex0, gx1 - self.ex0
                code = _KIND_CODE[kind]
                if code == 2 and a0 >= a1:
                    continue
                meta[n] = (code, t, z, a0, max(a0, a1), lx0, lx1, sly0, sly1)
                n += 1
                if a0 < a1:
                    npts = (a1 - a0) * (lx1 - lx0)
                    pts += npts
                    if code == 2:
                        wb += npts * self.esize
                        wp += 1
            per_k[k] = (meta, n, (rb, rp, wb, wp, pts))
        return per_k

    def _clip(self, t, rows):
        (gy0, gy1), (gx0, gx1) = self.regions[t]
        if rows is not None:
            gy0, gy1 = max(gy0, rows[0]), min(gy1, rows[1])
        return gy0, gy1, gx0, gx1

    # ------------------------------------------------------------------
    def run_iteration(self, k: int, rows=None, traffic=None) -> None:
        plans = self._meta.get(rows)
        if plans is None:
            plans = self._meta[rows] = self._build_meta(rows)
        meta, n, stats = plans[k]
        if n:
            # prange only when this runner owns the whole plane (the serial
            # executor); row-partitioned workers must not nest numba threads
            fn = self._fn(rows is None)
            fn(
                self._ringstack, self._shellstack, self._src3, self._dst3,
                meta, n, self.ey0, self.ex0, self.nz, self.slots,
                self.sy_lo, self.sy_hi, self.sx_lo, self.sx_hi,
                self._taps_off, self._taps_w, self._coef_a, self._coef_b,
                self._alpha, self._beta,
            )
        if traffic is not None:
            rb, rp, wb, wp, pts = stats
            if rb or rp:
                traffic.read(rb, planes=rp)
            if wb or wp:
                traffic.write(wb, planes=wp)
            if pts:
                traffic.update(pts, self.ops_per_update)
