"""Arbitrary-coefficient stencils of any radius.

The paper fixes :math:`R = 1` for its two kernels but develops the blocking
formulation for general radius (Section V, Notation).  This module provides
star and box stencils of arbitrary radius so the general-R scheduling and
overestimation machinery can be exercised and property-tested.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from contextlib import nullcontext

import numpy as np

from .base import PlaneKernel, ScratchArena, validate_footprint

__all__ = ["GenericStencil", "star_stencil", "box_stencil"]


class GenericStencil(PlaneKernel):
    """A stencil defined by a mapping ``(dz, dy, dx) -> weight``.

    The per-update op count follows the paper's convention: one load per tap,
    one store, one add per tap beyond the first, and one multiply per distinct
    weight group (we conservatively count one multiply per tap).
    """

    ncomp = 1

    def __init__(self, taps: Mapping[tuple[int, int, int], float]) -> None:
        if not taps:
            raise ValueError("a stencil needs at least one tap")
        self.taps = dict(taps)
        self.radius = max(max(abs(d) for d in off) for off in self.taps)
        if self.radius < 1:
            raise ValueError("stencil radius must be >= 1")
        ntaps = len(self.taps)
        # loads + store + adds + multiplies
        self.ops_per_update = ntaps + 1 + (ntaps - 1) + ntaps
        self.flops_per_update = (ntaps - 1) + ntaps
        # Pre-sort taps for a deterministic evaluation order (bit-exactness
        # across all blocking schedules depends on it).
        self._order = sorted(self.taps)
        # Contraction test for the flat path's throwaway seam lanes — see
        # SevenPointStencil.__init__.
        self._seam_contractive = sum(abs(w) for w in self.taps.values()) <= 1.0

    def __repr__(self) -> str:
        return f"GenericStencil(radius={self.radius}, taps={len(self.taps)})"

    def compute_plane(
        self,
        out: np.ndarray,
        src: Sequence[np.ndarray],
        yr: tuple[int, int],
        xr: tuple[int, int],
        gz: int = 0,
        gy0: int = 0,
        gx0: int = 0,
    ) -> None:
        validate_footprint(out.shape[1:], yr, xr, self.radius)
        y0, y1 = yr
        x0, x1 = xr
        dtype = out.dtype.type
        acc = np.zeros((y1 - y0, x1 - x0), dtype=out.dtype)
        for dz, dy, dx in self._order:
            w = dtype(self.taps[(dz, dy, dx)])
            plane = src[dz + self.radius][0]
            acc += w * plane[y0 + dy : y1 + dy, x0 + dx : x1 + dx]
        out[0, y0:y1, x0:x1] = acc

    def compute_plane_inplace(
        self,
        out: np.ndarray,
        src: Sequence[np.ndarray],
        yr: tuple[int, int],
        xr: tuple[int, int],
        gz: int = 0,
        gy0: int = 0,
        gx0: int = 0,
        *,
        arena: ScratchArena,
        seam_writable: bool = False,
    ) -> None:
        # Same zero-initialized accumulation in the same tap order as
        # compute_plane.  On contiguous planes every tap window is a 1D
        # contiguous slice of the flattened plane over the tight window
        # [y0*nx+x0, (y1-1)*nx+x1): in-bounds for any |dy|,|dx| <= R given the
        # footprint check, with only the seam positions between rows holding
        # junk that is never copied out.
        validate_footprint(out.shape[1:], yr, xr, self.radius)
        y0, y1 = yr
        x0, x1 = xr
        dtype = out.dtype.type
        planes = [src[dz + self.radius][0] for dz in range(-self.radius, self.radius + 1)]
        if all(p.flags.c_contiguous for p in planes):
            ny, nx = planes[0].shape
            s0 = y0 * nx + x0
            e0 = (y1 - 1) * nx + x1
            flats = [p.ravel() for p in planes]
            oplane = out[0]
            # Seam-writable targets accumulate straight into out's flat
            # window (junk lands on the dead seam columns between rows); see
            # SevenPointStencil.compute_plane_inplace.
            direct = seam_writable and oplane.flags.c_contiguous
            if direct:
                acc = oplane.ravel()[s0:e0]
            else:
                acc = arena.get("generic.facc", (e0 - s0,), out.dtype)
            tmp = arena.get("generic.ftmp", (e0 - s0,), out.dtype)
            acc[...] = 0
            # Seam lanes can overflow round over round for non-contractive
            # weights; suppress their spurious FP warnings then (see
            # SevenPointStencil.compute_plane_inplace).
            ctx = (
                nullcontext()
                if self._seam_contractive
                else np.errstate(all="ignore")
            )
            with ctx:
                for dz, dy, dx in self._order:
                    w = dtype(self.taps[(dz, dy, dx)])
                    off = dy * nx + dx
                    np.multiply(
                        flats[dz + self.radius][s0 + off : e0 + off], w, out=tmp
                    )
                    acc += tmp
            if not direct:
                isize = acc.itemsize
                view = np.lib.stride_tricks.as_strided(
                    acc, shape=(y1 - y0, x1 - x0), strides=(nx * isize, isize)
                )
                out[0, y0:y1, x0:x1] = view
            return
        tmp = arena.get("generic.tmp", (y1 - y0, x1 - x0), out.dtype)
        acc = out[0, y0:y1, x0:x1]
        acc[...] = 0
        for dz, dy, dx in self._order:
            w = dtype(self.taps[(dz, dy, dx)])
            plane = src[dz + self.radius][0]
            np.multiply(plane[y0 + dy : y1 + dy, x0 + dx : x1 + dx], w, out=tmp)
            acc += tmp


def star_stencil(radius: int, center: float = 0.4, arm: float = 0.05) -> GenericStencil:
    """A star (axis-aligned) stencil of the given radius."""
    taps: dict[tuple[int, int, int], float] = {(0, 0, 0): center}
    for r in range(1, radius + 1):
        for axis in range(3):
            for sign in (-1, 1):
                off = [0, 0, 0]
                off[axis] = sign * r
                taps[tuple(off)] = arm
    return GenericStencil(taps)


def box_stencil(radius: int, center: float = 0.4, other: float = 0.01) -> GenericStencil:
    """A dense box stencil covering the full ``(2R+1)^3`` cube."""
    taps = {
        (dz, dy, dx): (center if (dz, dy, dx) == (0, 0, 0) else other)
        for dz in range(-radius, radius + 1)
        for dy in range(-radius, radius + 1)
        for dx in range(-radius, radius + 1)
    }
    return GenericStencil(taps)
