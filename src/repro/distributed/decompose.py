"""1D domain decomposition along Z.

The Z axis is the streaming dimension of 2.5D blocking, so slab
decomposition along Z composes naturally with the 3.5D executors: each rank
streams through its own slab while the XY tiling is unchanged.  Halo width
per exchange is ``R * dim_T`` — one exchange feeds a whole blocked round.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..runtime.partition import partition_span

__all__ = ["Slab", "decompose_z"]


@dataclass(frozen=True)
class Slab:
    """One rank's owned portion of the global Z axis."""

    rank: int
    z0: int
    z1: int
    lo_neighbor: int | None
    hi_neighbor: int | None

    @property
    def owned(self) -> int:
        return self.z1 - self.z0

    @property
    def lo_cut(self) -> bool:
        """Whether the low edge is a cut (a neighbor exists below)."""
        return self.lo_neighbor is not None

    @property
    def hi_cut(self) -> bool:
        """Whether the high edge is a cut (a neighbor exists above)."""
        return self.hi_neighbor is not None


def decompose_z(
    nz: int, n_ranks: int, halo: int, *, ranks: Sequence[int] | None = None
) -> list[Slab]:
    """Partition ``[0, nz)`` into contiguous near-equal slabs.

    Every slab must own at least ``halo`` planes so a single neighbor
    exchange provides the full ghost zone for one blocked round.

    ``ranks`` optionally names the rank ids owning the slabs in Z order
    (default ``0..n_ranks-1``).  This is the elastic re-decomposition hook:
    after a rank failure the surviving ids — no longer contiguous — are
    handed back in, and each slab's neighbors become the *adjacent
    surviving* ranks.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if halo < 0:
        raise ValueError("halo must be >= 0")
    if ranks is None:
        rank_ids = list(range(n_ranks))
    else:
        rank_ids = list(ranks)
        if len(rank_ids) != n_ranks:
            raise ValueError(
                f"ranks names {len(rank_ids)} ids for {n_ranks} slabs"
            )
        if len(set(rank_ids)) != len(rank_ids):
            raise ValueError("ranks must be distinct")
    spans = partition_span(0, nz, n_ranks)
    min_owned = min(hi - lo for lo, hi in spans)
    if n_ranks > 1 and min_owned < halo:
        raise ValueError(
            f"{n_ranks} ranks over {nz} planes leave a slab of {min_owned} < "
            f"halo {halo}: use fewer ranks or a smaller dim_T"
        )
    slabs = []
    for i, (lo, hi) in enumerate(spans):
        slabs.append(
            Slab(
                rank=rank_ids[i],
                z0=lo,
                z1=hi,
                lo_neighbor=rank_ids[i - 1] if i > 0 else None,
                hi_neighbor=rank_ids[i + 1] if i < n_ranks - 1 else None,
            )
        )
    return slabs
