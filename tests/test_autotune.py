"""Tests for the empirical (measurement-driven) auto-tuner."""

import numpy as np
import pytest

from repro.core import autotune_empirical, tune
from repro.machine import CORE_I7, scaled_machine
from repro.stencils import SevenPointStencil, TwentySevenPointStencil


class TestEmpiricalAutotune:
    def test_returns_ranked_candidates(self):
        results = autotune_empirical(
            SevenPointStencil(),
            CORE_I7,
            np.float32,
            probe_shape=(8, 64, 64),
            dim_t_candidates=(1, 2, 3),
            tile_candidates=(32, 64),
        )
        assert len(results) >= 4
        times = [c.predicted_time_per_update for c in results if c.fits_capacity]
        assert times == sorted(times)

    def test_bandwidth_bound_kernel_prefers_temporal_blocking(self):
        """7pt SP on the Core i7 (γ > Γ): the winner has dim_T >= 2."""
        results = autotune_empirical(
            SevenPointStencil(),
            CORE_I7,
            np.float32,
            probe_shape=(8, 64, 64),
            dim_t_candidates=(1, 2, 3),
            tile_candidates=(32, 64),
        )
        assert results[0].dim_t >= 2

    def test_compute_bound_kernel_prefers_dim_t_1(self):
        """27pt (γ < Γ): extra temporal blocking only adds ghost compute."""
        results = autotune_empirical(
            TwentySevenPointStencil(),
            CORE_I7,
            np.float32,
            probe_shape=(8, 64, 64),
            dim_t_candidates=(1, 2, 3),
            tile_candidates=(32, 64),
        )
        assert results[0].dim_t == 1

    def test_agrees_with_analytic_tuner_on_dim_t(self):
        """Measured search lands on Equation 3's knee for the 7pt kernel."""
        analytic = tune(SevenPointStencil(), CORE_I7, np.float32, derated=False)
        empirical = autotune_empirical(
            SevenPointStencil(),
            CORE_I7,
            np.float32,
            probe_shape=(8, 64, 64),
            dim_t_candidates=(1, 2, 3, 4),
            tile_candidates=(64,),
        )
        # Eq.3 minimum is dim_T=2; measured winner within one step of it
        assert abs(empirical[0].dim_t - analytic.params.dim_t) <= 1

    def test_capacity_flag(self):
        tiny = scaled_machine(CORE_I7, capacity_scale=1e-4)  # ~400 B
        results = autotune_empirical(
            SevenPointStencil(),
            tiny,
            np.float32,
            probe_shape=(8, 32, 32),
            dim_t_candidates=(1, 2),
            tile_candidates=(16, 32),
        )
        assert not any(c.fits_capacity for c in results)

    def test_larger_tile_lowers_bytes_per_update(self):
        results = autotune_empirical(
            SevenPointStencil(),
            CORE_I7,
            np.float32,
            probe_shape=(8, 96, 96),
            dim_t_candidates=(2,),
            tile_candidates=(16, 96),
        )
        by_tile = {c.tile: c.bytes_per_update for c in results}
        assert by_tile[96] < by_tile[16]

    def test_no_candidates_raises(self):
        with pytest.raises(ValueError):
            autotune_empirical(
                SevenPointStencil(),
                CORE_I7,
                np.float32,
                probe_shape=(8, 16, 16),
                dim_t_candidates=(8,),
                tile_candidates=(8,),  # tile <= 2*R*dim_t: all skipped
            )
