"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.kernel == "7pt"
        assert args.scheme == "3.5d"

    def test_invalid_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "bogus"])


class TestRunCommand:
    @pytest.mark.parametrize(
        "scheme", ["naive", "3d", "2.5d", "4d", "3.5d", "cache-oblivious"]
    )
    def test_all_schemes_verify(self, scheme, capsys):
        rc = main(
            ["run", "--kernel", "7pt", "--grid", "16", "--steps", "2",
             "--scheme", scheme, "--tile", "12", "--dim-t", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        if scheme != "naive":
            assert "bit-identical" in out

    def test_threaded_run(self, capsys):
        rc = main(
            ["run", "--grid", "16", "--steps", "2", "--tile", "12",
             "--threads", "2"]
        )
        assert rc == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_lbm_run(self, capsys):
        rc = main(
            ["run", "--kernel", "lbm", "--grid", "12", "--steps", "2",
             "--tile", "10", "--scheme", "3.5d"]
        )
        assert rc == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_no_check_skips_verification(self, capsys):
        rc = main(
            ["run", "--grid", "12", "--steps", "1", "--tile", "10", "--no-check"]
        )
        assert rc == 0
        assert "bit-identical" not in capsys.readouterr().out

    def test_traffic_reported(self, capsys):
        main(["run", "--grid", "16", "--steps", "2", "--tile", "12"])
        out = capsys.readouterr().out
        assert "bytes/update" in out
        assert "MB" in out


class TestTuneCommand:
    def test_paper_config_7pt(self, capsys):
        rc = main(["tune", "--kernel", "7pt", "--machine", "corei7"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "dim_T    : 2" in out
        assert "dim_X=Y  : 360" in out

    def test_lbm_gpu_infeasible(self, capsys):
        rc = main(
            ["tune", "--kernel", "lbm", "--machine", "gtx285",
             "--capacity", str(16 << 10)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "infeasible" in out

    def test_27pt_spatial_only(self, capsys):
        main(["tune", "--kernel", "27pt", "--machine", "corei7"])
        assert "2.5d" in capsys.readouterr().out


class TestReproduceCommand:
    @pytest.mark.parametrize(
        "artifact", ["table1", "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "comparisons"]
    )
    def test_each_artifact(self, artifact, capsys):
        rc = main(["reproduce", artifact])
        out = capsys.readouterr().out
        assert rc == 0
        assert len(out.splitlines()) > 3

    def test_all(self, capsys):
        rc = main(["reproduce"])
        out = capsys.readouterr().out
        assert rc == 0
        for marker in ("Table I", "Figure 4(a)", "Figure 5(b)", "Section VII-D"):
            assert marker in out


class TestInfoCommand:
    def test_info(self, capsys):
        rc = main(["info"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Core i7" in out
        assert "GTX 285" in out


class TestScheduleCommand:
    def test_renders_schedule(self, capsys):
        rc = main(["schedule", "--nz", "10", "--dim-t", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "t'=0 load" in out
        assert "t'=2 store" in out
        assert "validated" in out

    def test_sequential_variant(self, capsys):
        rc = main(["schedule", "--nz", "10", "--dim-t", "2", "--sequential"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sequential" in out
        assert "lag=1" in out

    def test_radius2(self, capsys):
        rc = main(["schedule", "--nz", "12", "--radius", "2", "--dim-t", "2"])
        assert rc == 0
        assert "lag=3" in capsys.readouterr().out


class TestResilienceExitCodes:
    """The run contract: 0 clean, 2 usage, 3 degraded-but-correct, 4 failed."""

    _base = ["run", "--grid", "12", "--steps", "2", "--tile", "10", "--dim-t", "2"]

    def test_unknown_backend_is_usage_error(self, capsys):
        rc = main(self._base + ["--backend", "bogus"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, capsys):
        rc = main(self._base + ["--resume"])
        assert rc == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_degraded_backend_exits_3_but_verifies(self, capsys):
        from repro.resilience import DegradedExecutionWarning
        from repro.resilience.faultinject import FAULTS

        with FAULTS.injected("backend.bind=fused-numpy"):
            with pytest.warns(DegradedExecutionWarning):
                rc = main(self._base + ["--backend", "fused-numpy"])
        out = capsys.readouterr().out
        assert rc == 3
        assert "bit-identical" in out
        assert "degraded" in out
        assert "backend used : numpy-inplace" in out

    def test_no_fallback_fails_with_4(self, capsys):
        from repro.resilience.faultinject import FAULTS

        with FAULTS.injected("backend.bind=fused-numpy"):
            rc = main(
                self._base + ["--backend", "fused-numpy", "--no-fallback"]
            )
        assert rc == 4
        assert "InjectedFault" in capsys.readouterr().err

    def test_health_failure_exits_4(self, capsys):
        from repro.resilience.faultinject import FAULTS

        with FAULTS.injected("grid.nan"):
            rc = main(list(self._base))
        assert rc == 4
        assert "HealthCheckError" in capsys.readouterr().err

    def test_nan_under_warn_policy_fails_the_check(self, capsys):
        from repro.resilience import HealthWarning
        from repro.resilience.faultinject import FAULTS

        with FAULTS.injected("grid.nan"):
            with pytest.warns(HealthWarning):
                rc = main(self._base + ["--health", "warn"])
        assert rc == 4
        assert "MISMATCH" in capsys.readouterr().out

    def test_repair_policy_recovers_with_3(self, capsys):
        from repro.resilience.faultinject import FAULTS

        with FAULTS.injected("grid.nan@1"):
            rc = main(
                ["run", "--grid", "12", "--steps", "6", "--tile", "10",
                 "--dim-t", "2", "--health", "repair"]
            )
        out = capsys.readouterr().out
        assert rc == 3
        assert "bit-identical" in out
        assert "repairs" in out

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        ck = str(tmp_path / "snap.npz")
        base = ["run", "--grid", "12", "--steps", "4", "--tile", "10",
                "--dim-t", "2", "--checkpoint", ck]
        assert main(base) == 0
        capsys.readouterr()
        rc = main(base + ["--resume"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resumed      : from step 2" in out
        assert "bit-identical" in out


class TestObservabilityCLI:
    """--trace/--metrics emission and the `repro trace` summary command."""

    _base = ["run", "--grid", "16", "--steps", "2", "--tile", "8",
             "--dim-t", "2"]

    def test_trace_and_metrics_files_validate(self, tmp_path, capsys):
        import json

        from repro.obs.schema import validate_file

        tr = str(tmp_path / "trace.json")
        mx = str(tmp_path / "metrics.json")
        rc = main(self._base + ["--trace", tr, "--metrics", mx])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bit-identical" in out
        assert "kappa measured" in out
        assert validate_file(tr) == []
        assert validate_file(mx) == []
        doc = json.loads(open(tr).read())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"sweep", "round", "z_iter", "tile"} <= names
        mdoc = json.loads(open(mx).read())
        assert mdoc["counters"]["traffic.bytes_read"] > 0
        assert mdoc["validation"]["kappa_ratio"] == pytest.approx(
            mdoc["validation"]["kappa_measured"]
            / mdoc["validation"]["kappa_predicted"])
        assert mdoc["run"]["kernel"] == "7pt"

    def test_threaded_metrics_report_barrier_wait(self, tmp_path, capsys):
        import json

        mx = str(tmp_path / "metrics.json")
        rc = main(self._base + ["--threads", "2", "--metrics", mx])
        out = capsys.readouterr().out
        assert rc == 0
        assert "barrier wait" in out
        mdoc = json.loads(open(mx).read())
        assert "barrier_wait_fraction" in mdoc.get("derived", {})
        assert len(mdoc["per_thread"]["traffic.bytes_read.per_thread"]) == 2
        assert "load_imbalance" in mdoc["validation"]

    def test_tracer_disarmed_after_run(self, tmp_path):
        from repro.obs import METRICS, TRACE

        tr = str(tmp_path / "trace.json")
        assert main(self._base + ["--trace", tr, "--metrics",
                                  str(tmp_path / "m.json")]) == 0
        assert not TRACE.armed
        assert not METRICS.armed

    def test_trace_summary_command(self, tmp_path, capsys):
        tr = str(tmp_path / "trace.json")
        main(self._base + ["--trace", tr])
        capsys.readouterr()
        rc = main(["trace", tr])
        out = capsys.readouterr().out
        assert rc == 0
        assert "z_iter" in out
        assert "self %" in out

    def test_trace_summary_missing_file(self, capsys):
        rc = main(["trace", "/nonexistent/trace.json"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestDistributedCLI:
    _base = ["run", "--grid", "16", "--steps", "2", "--tile", "8",
             "--dim-t", "2"]

    def test_ranks_run_verifies(self, capsys):
        rc = main(self._base + ["--ranks", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "distributed, 2 ranks" in out
        assert "comm         :" in out
        assert "bit-identical" in out

    def test_lossy_run_recovers(self, capsys):
        rc = main(["run", "--grid", "16", "--steps", "4", "--tile", "8",
                   "--dim-t", "2", "--ranks", "4", "--loss", "0.3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "all recovered" in out
        assert "bit-identical" in out

    def test_loss_without_ranks_is_usage_error(self, capsys):
        rc = main(self._base + ["--loss", "0.05"])
        assert rc == 2
        assert "--ranks" in capsys.readouterr().err

    def test_ranks_metrics_include_comm(self, tmp_path, capsys):
        import json

        mx = str(tmp_path / "metrics.json")
        rc = main(self._base + ["--ranks", "2", "--metrics", mx])
        assert rc == 0
        mdoc = json.loads(open(mx).read())
        assert mdoc["counters"]["comm.messages"] > 0


class TestFaultsCommand:
    def test_lists_every_site(self, capsys):
        from repro.resilience import SITES

        rc = main(["faults", "--list"])
        out = capsys.readouterr().out
        assert rc == 0
        for site in SITES:
            assert site in out
        assert "site[=arg][:times][@after]" in out
        assert "REPRO_FAULTS" in out

    def test_list_flag_optional(self, capsys):
        assert main(["faults"]) == 0
        assert "rank.crash" in capsys.readouterr().out


class TestChaosCommand:
    _base = ["chaos", "--ranks", "4", "--grid", "16", "--steps", "4",
             "--dim-t", "2"]

    def test_soak_all_green(self, capsys):
        rc = main(self._base + ["--seeds", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "all 2 seed(s) bit-exact" in out
        assert "seed 0" in out and "seed 1" in out

    def test_schedule_subset(self, capsys):
        rc = main(self._base + ["--seeds", "1", "--schedules", "loss"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "schedules    : loss" in out

    def test_unknown_schedule_is_usage_error(self, capsys):
        rc = main(self._base + ["--schedules", "crash,meteor"])
        assert rc == 2
        assert "meteor" in capsys.readouterr().err

    def test_zero_seeds_is_usage_error(self, capsys):
        rc = main(self._base + ["--seeds", "0"])
        assert rc == 2

    def test_seed_base_shifts_seeds(self, capsys):
        rc = main(self._base + ["--seeds", "1", "--seed-base", "7"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "seed 7" in out


class TestRankRecoveryCLI:
    _base = ["run", "--grid", "24", "--steps", "8", "--tile", "12",
             "--dim-t", "2", "--ranks", "4"]

    @pytest.fixture(autouse=True)
    def _disarm(self):
        from repro.resilience import FAULTS

        yield
        FAULTS.disarm()

    def _crashing(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "rank.crash=2@2")
        from repro.resilience import FAULTS

        FAULTS.load_env()

    def test_recovered_run_is_degraded_but_correct(self, monkeypatch, capsys):
        self._crashing(monkeypatch)
        rc = main(self._base)
        out = capsys.readouterr().out
        assert rc == 3
        assert "rank crashes : rank 2 at round 2" in out
        assert "recoveries   : 1" in out
        assert "bit-identical" in out

    def test_no_recovery_fails_with_4(self, monkeypatch, capsys):
        self._crashing(monkeypatch)
        rc = main(self._base + ["--no-recovery"])
        assert rc == 4
        assert "RankDeadError" in capsys.readouterr().err

    def test_recovery_spans_reach_trace_summary(
        self, monkeypatch, tmp_path, capsys
    ):
        self._crashing(monkeypatch)
        tr = str(tmp_path / "trace.json")
        rc = main(self._base + ["--trace", tr])
        assert rc == 3
        capsys.readouterr()
        assert main(["trace", tr]) == 0
        assert "rank_recovery" in capsys.readouterr().out

    def test_recovery_counters_in_metrics(self, monkeypatch, tmp_path, capsys):
        import json

        self._crashing(monkeypatch)
        mx = str(tmp_path / "metrics.json")
        rc = main(self._base + ["--metrics", mx])
        assert rc == 3
        counters = json.loads(open(mx).read())["counters"]
        assert counters["resilience.recoveries"] == 1
        assert counters["resilience.replayed_rounds"] == 1
        assert counters["resilience.buddy_bytes"] > 0

    def test_clean_run_stays_exit_0(self, capsys):
        rc = main(self._base)
        out = capsys.readouterr().out
        assert rc == 0
        assert "rank crashes" not in out
