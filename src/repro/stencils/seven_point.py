"""The 7-point Jacobi stencil (paper Section IV-A1).

.. math::

   B_{x,y,z}(t+1) = \\alpha A_{x,y,z}(t) + \\beta \\bigl(A_{x\\pm1,y,z}(t)
                    + A_{x,y\\pm1,z}(t) + A_{x,y,z\\pm1}(t)\\bigr)

Per-update cost accounting (Section IV-A1): 16 ops — 2 multiplies, 6 adds,
7 loads, 1 store.  After spatial blocking the compulsory traffic is one read
of A and one write of B per point: 8 bytes SP, 16 bytes DP, so
:math:`\\gamma = 0.5` (SP) and :math:`1.0` (DP).
"""

from __future__ import annotations

from collections.abc import Sequence
from contextlib import nullcontext

import numpy as np

from .base import PlaneKernel, ScratchArena, validate_footprint

__all__ = ["SevenPointStencil"]


class SevenPointStencil(PlaneKernel):
    """Radius-1 7-point star stencil with coefficients alpha, beta."""

    radius = 1
    ncomp = 1
    # 2 mults + 6 adds + 7 loads + 1 store (Section IV-A1)
    ops_per_update = 16
    flops_per_update = 8

    def __init__(self, alpha: float = 0.4, beta: float = 0.1) -> None:
        self.alpha = alpha
        self.beta = beta
        # When the weights are a contraction (sum of magnitudes <= 1), the
        # flat path's throwaway seam lanes stay bounded by the largest finite
        # operand — they can never overflow on their own, so the per-call FP
        # warning suppression is unnecessary (ring and arena memory is
        # zero-initialised; see PlaneRing).
        self._seam_contractive = abs(alpha) + 6 * abs(beta) <= 1.0

    def __repr__(self) -> str:
        return f"SevenPointStencil(alpha={self.alpha}, beta={self.beta})"

    def compute_plane(
        self,
        out: np.ndarray,
        src: Sequence[np.ndarray],
        yr: tuple[int, int],
        xr: tuple[int, int],
        gz: int = 0,
        gy0: int = 0,
        gx0: int = 0,
    ) -> None:
        validate_footprint(out.shape[1:], yr, xr, self.radius)
        below, mid, above = src[0][0], src[1][0], src[2][0]
        y0, y1 = yr
        x0, x1 = xr
        ys = slice(y0, y1)
        xs = slice(x0, x1)
        # Evaluate the exact expression of the reference sweep so every
        # blocking schedule is bit-identical to the naive result.  Opposite
        # neighbors are paired before accumulation: a single FP add of a
        # commuted pair is bitwise mirror-invariant, so reflections of the
        # grid produce bitwise reflections of the result — which makes the
        # symmetric (Neumann) padded boundary mode exact (docs/algorithms.md).
        acc = below[ys, xs] + above[ys, xs]
        acc += mid[slice(y0 - 1, y1 - 1), xs] + mid[slice(y0 + 1, y1 + 1), xs]
        acc += mid[ys, slice(x0 - 1, x1 - 1)] + mid[ys, slice(x0 + 1, x1 + 1)]
        dtype = out.dtype.type
        out[0, ys, xs] = dtype(self.alpha) * mid[ys, xs] + dtype(self.beta) * acc

    def compute_plane_inplace(
        self,
        out: np.ndarray,
        src: Sequence[np.ndarray],
        yr: tuple[int, int],
        xr: tuple[int, int],
        gz: int = 0,
        gy0: int = 0,
        gx0: int = 0,
        *,
        arena: ScratchArena,
        seam_writable: bool = False,
    ) -> None:
        # Same operand pairing as compute_plane, with every temporary drawn
        # from the arena and the final add targeting ``out`` directly.
        #
        # Fast path: when the source planes are C-contiguous (always true for
        # ring-buffer and whole-grid planes), every shifted neighbor window is
        # a *contiguous 1D* slice of the flattened plane — the ufuncs run one
        # straight SIMD pass instead of a strided row loop.  Full rows
        # ``[y0, y1)`` are computed, so the wrap-around columns outside
        # ``[x0, x1)`` hold junk; they are simply never copied into ``out``.
        # Each core position sees exactly the same operand values and the same
        # operation tree as ``compute_plane``, so the result is bit-identical.
        validate_footprint(out.shape[1:], yr, xr, self.radius)
        below, mid, above = src[0][0], src[1][0], src[2][0]
        y0, y1 = yr
        x0, x1 = xr
        dtype = out.dtype.type
        if (
            below.flags.c_contiguous
            and mid.flags.c_contiguous
            and above.flags.c_contiguous
        ):
            ny, nx = mid.shape
            s = y0 * nx
            e = y1 * nx
            fb, fm, fa = below.ravel(), mid.ravel(), above.ravel()
            oplane = out[0]
            # With the caller's seam-writable promise the accumulator can be
            # out's own flat row span — junk lands on the dead seam columns
            # and the strided copy-out below disappears entirely.
            direct = seam_writable and oplane.flags.c_contiguous
            if direct:
                acc = oplane.ravel()[s:e]
            else:
                acc = arena.get("7pt.acc", (e - s,), out.dtype)
            tmp = arena.get("7pt.tmp", (e - s,), out.dtype)
            # Non-contractive weights can amplify the throwaway seam lanes
            # past the FP range round over round; suppress the spurious
            # warnings those lanes would raise.  Contractive weights (the
            # default) keep them bounded, so the guard is skipped.
            ctx = (
                nullcontext()
                if self._seam_contractive
                else np.errstate(all="ignore")
            )
            with ctx:
                np.add(fb[s:e], fa[s:e], out=acc)
                np.add(fm[s - nx : e - nx], fm[s + nx : e + nx], out=tmp)
                acc += tmp
                np.add(fm[s - 1 : e - 1], fm[s + 1 : e + 1], out=tmp)
                acc += tmp
                np.multiply(fm[s:e], dtype(self.alpha), out=tmp)
                np.multiply(acc, dtype(self.beta), out=acc)
                np.add(tmp, acc, out=acc)
            if not direct:
                out[0, y0:y1, x0:x1] = acc.reshape(y1 - y0, nx)[:, x0:x1]
            return
        ys = slice(y0, y1)
        xs = slice(x0, x1)
        shape = (y1 - y0, x1 - x0)
        acc = arena.get("7pt.acc2d", shape, out.dtype)
        tmp = arena.get("7pt.tmp2d", shape, out.dtype)
        np.add(below[ys, xs], above[ys, xs], out=acc)
        np.add(mid[y0 - 1 : y1 - 1, xs], mid[y0 + 1 : y1 + 1, xs], out=tmp)
        acc += tmp
        np.add(mid[ys, x0 - 1 : x1 - 1], mid[ys, x0 + 1 : x1 + 1], out=tmp)
        acc += tmp
        np.multiply(mid[ys, xs], dtype(self.alpha), out=tmp)
        np.multiply(acc, dtype(self.beta), out=acc)
        np.add(tmp, acc, out=out[0, ys, xs])
