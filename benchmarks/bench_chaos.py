"""Chaos soak: the rank-recovery claim under randomized fault schedules.

Not a paper artifact — the paper assumes perfect hardware — but the
robustness pledge of the distributed extension: any survivable schedule of
rank crashes, message loss, payload corruption and delayed acks yields a
final field bit-identical to the fault-free serial reference, replaying at
most one blocked round per failure.  The soak draws one schedule per seed
(see :mod:`repro.resilience.chaos`), so every red row is a one-line repro:
re-run the same seed.
"""

from repro.perf import format_table
from repro.resilience.chaos import make_case, run_soak

from .conftest import banner, record

SEEDS = range(6)


def test_chaos_soak_bit_exact(benchmark):
    cases = [make_case(seed, ranks=4, grid=20, steps=6, dim_t=2)
             for seed in SEEDS]

    def soak():
        return run_soak(SEEDS, ranks=4, grid=20, steps=6, dim_t=2)

    results = benchmark.pedantic(soak, rounds=1, iterations=1)
    print(banner("Chaos soak: 4 ranks, 20^3 x 6 steps, randomized faults"))
    print(format_table(
        ["seed", "ok", "recoveries", "replayed", "retries", "dropped",
         "corrupted", "delayed", "schedule"],
        [
            (
                r.case.seed,
                "yes" if r.ok else "NO",
                r.recoveries,
                r.replayed_rounds,
                r.comm_retries,
                r.comm_dropped,
                r.comm_corrupted,
                r.comm_delayed,
                ", ".join(r.case.specs) or "-",
            )
            for r in results
        ],
    ))
    assert [c.seed for c in cases] == [r.case.seed for r in results]
    for r in results:
        assert r.ok, f"seed {r.case.seed} failed: {r.error or 'bit mismatch'}"
        assert r.replayed_rounds <= len(r.failed_ranks)

    crashes = sum(r.recoveries for r in results)
    retries = sum(r.comm_retries for r in results)
    assert crashes > 0  # the seed range must actually exercise recovery
    record(benchmark, seeds=len(results), recoveries=crashes,
           comm_retries=retries)
