"""Rank-failure tolerance: buddy checkpoints and elastic re-decomposition.

The distributed 3.5D driver exchanges ``h = R * dim_T`` halo planes once
per blocked round, so a round is also the natural *recovery* granularity:
between rounds the only distributed state is each rank's owned slab plus
the round index.  This module provides the pieces that let a sweep survive
ranks dying mid-run:

* :class:`RankDeadError` — the typed detection signal.  A dead rank is
  noticed at the next halo exchange (``SimComm.recv`` from a dead source),
  never by hanging;
* :class:`BuddyStore` — diskless in-memory checkpointing.  At the start of
  every round each rank keeps its own slab snapshot *and* replicates it to
  a buddy (the next live rank in the ring), so losing any single rank loses
  no state and recovery replays at most the interrupted round;
* :class:`RecoveryReport` — the machine-checkable record of every crash,
  recovery and replayed round, mirrored into the ``resilience.*`` counters
  (``recoveries``, ``replayed_rounds``, ``buddy_bytes``, ``rank_failures``)
  and the ``rank_recovery`` trace span.

The recovery state machine lives in
:meth:`repro.distributed.runner.DistributedJacobi.run`:

    detect (``RankDeadError`` at halo exchange)
      -> re-decompose (``decompose_z`` over the surviving ranks)
      -> buddy-restore (round-start slabs from :class:`BuddyStore`)
      -> replay (re-run the interrupted round on the new slab map)

Losing a rank *and* its buddy in the same round loses the round-start
snapshot and is unrecoverable (:class:`UnrecoverableRankFailureError`) —
the classic buddy-checkpointing failure model.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from .faultinject import ResilienceError

__all__ = [
    "BuddySnapshot",
    "BuddyStore",
    "RankDeadError",
    "RecoveryReport",
    "UnrecoverableRankFailureError",
    "buddy_of",
]


class RankDeadError(ResilienceError):
    """A halo exchange touched a rank that is no longer alive."""

    def __init__(self, rank: int, message: str | None = None) -> None:
        self.rank = rank
        super().__init__(message or f"rank {rank} is dead")


class UnrecoverableRankFailureError(ResilienceError):
    """Rank failure(s) the buddy scheme cannot recover from: a rank and its
    buddy died in the same round, every rank died, or the survivors are too
    few to hold ``halo``-wide slabs."""


@dataclass
class BuddySnapshot:
    """One rank's round-start state: slab data plus enough metadata to
    restore it into a rebuilt decomposition."""

    owner: int
    round_index: int
    z0: int
    z1: int
    data: np.ndarray  # (ncomp, z1 - z0, ny, nx) slab copy
    meta: dict = field(default_factory=dict)
    #: sha256 content digest of ``data``, stamped by the store at
    #: checkpoint time and re-verified at restore — a replica that rotted
    #: in the holder's memory is refused, never replayed from
    sha256: str = ""


def _slab_digest(data: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(data)).hexdigest()


class BuddyStore:
    """In-memory buddy checkpointing: own copy + replica on a neighbor.

    ``checkpoint(snap, holder)`` records the owner's own snapshot and, when
    ``holder`` is given, a replica conceptually resident in the holder
    rank's memory.  ``restore(owner, alive)`` models what recovery can
    actually reach: a live owner serves its own copy; a dead owner's state
    survives only while its holder does.  No disk is involved — losing a
    rank costs one round of replay, not an I/O round-trip.
    """

    def __init__(self) -> None:
        self._own: dict[int, BuddySnapshot] = {}
        self._replica: dict[int, tuple[int, BuddySnapshot]] = {}
        self.bytes_replicated = 0
        self.snapshots = 0

    def checkpoint(self, snap: BuddySnapshot, holder: int | None) -> None:
        """Record ``snap`` as the owner's round-start state; replicate to
        ``holder`` when one is given (counted in ``bytes_replicated``).

        Both copies are stamped with a sha256 content digest;
        :meth:`restore` re-verifies it so state that rotted between
        checkpoint and recovery is refused instead of replayed from.
        """
        if not snap.sha256:
            snap.sha256 = _slab_digest(snap.data)
        self._own[snap.owner] = snap
        self.snapshots += 1
        if holder is None:
            self._replica.pop(snap.owner, None)
            return
        if holder == snap.owner:
            raise ValueError("a rank cannot be its own buddy")
        replica = BuddySnapshot(
            owner=snap.owner,
            round_index=snap.round_index,
            z0=snap.z0,
            z1=snap.z1,
            data=snap.data.copy(),
            meta=dict(snap.meta),
            sha256=snap.sha256,
        )
        self._replica[snap.owner] = (holder, replica)
        self.bytes_replicated += replica.data.nbytes

    def holder_of(self, owner: int) -> int | None:
        """The rank holding ``owner``'s replica, or ``None``."""
        entry = self._replica.get(owner)
        return entry[0] if entry else None

    def restore(self, owner: int, alive) -> BuddySnapshot:
        """The reachable round-start snapshot of ``owner``.

        ``alive`` is a ``rank -> bool`` predicate.  A live owner serves its
        own copy; a dead owner is restored from its buddy replica — and if
        that buddy is dead too, the state is gone
        (:class:`UnrecoverableRankFailureError`).
        """
        own = self._own.get(owner)
        if own is not None and alive(owner):
            return self._verified(own, "own snapshot")
        entry = self._replica.get(owner)
        if entry is None:
            raise UnrecoverableRankFailureError(
                f"rank {owner} died with no buddy replica of its slab"
            )
        holder, replica = entry
        if not alive(holder):
            raise UnrecoverableRankFailureError(
                f"rank {owner} and its buddy {holder} both died in the same "
                "round; the round-start slab is lost"
            )
        return self._verified(replica, f"replica held by rank {holder}")

    @staticmethod
    def _verified(snap: BuddySnapshot, kind: str) -> BuddySnapshot:
        """Refuse a snapshot whose payload no longer matches its digest."""
        if snap.sha256 and _slab_digest(snap.data) != snap.sha256:
            raise UnrecoverableRankFailureError(
                f"rank {snap.owner}'s {kind} (round {snap.round_index}) "
                "failed its sha256 content digest — the round-start slab "
                "rotted after checkpointing and cannot be replayed from"
            )
        return snap


def buddy_of(rank: int, live: list[int]) -> int | None:
    """The next live rank after ``rank`` in cyclic order (``None`` if alone)."""
    if len(live) < 2:
        return None
    i = live.index(rank)
    return live[(i + 1) % len(live)]


@dataclass
class RecoveryReport:
    """Accumulated rank-failure events of one distributed run."""

    initial_ranks: int = 0
    final_ranks: int = 0
    #: (round_index, rank) per detected crash
    failed_ranks: list = field(default_factory=list)
    recoveries: int = 0
    replayed_rounds: int = 0
    buddy_bytes: int = 0
    buddy_snapshots: int = 0
    purged_messages: int = 0

    @property
    def degraded(self) -> bool:
        """True when the run finished but lost ranks along the way."""
        return self.recoveries > 0

    def lines(self) -> list[str]:
        """Human-readable summary lines (empty for a failure-free run)."""
        if not self.recoveries:
            return []
        crashes = ", ".join(
            f"rank {rank} at round {rnd}" for rnd, rank in self.failed_ranks
        )
        return [
            f"rank crashes : {crashes}",
            f"recoveries   : {self.recoveries} "
            f"(replayed {self.replayed_rounds} round(s), finished on "
            f"{self.final_ranks} of {self.initial_ranks} ranks)",
            f"buddy state  : {self.buddy_bytes / 1e6:.1f} MB replicated over "
            f"{self.buddy_snapshots} snapshot(s)",
        ]
