"""Tile-level trapezoid temporal blocking (reference implementation).

Advance a 3D tile by ``dim_T`` time steps entirely inside a scratch buffer:
copy the tile plus a halo of ``R * dim_T`` cells, run ``dim_T`` naive steps on
the scratch with the computable region shrinking by R per step away from cut
edges, then write the tile core back.

This is the classic 4D-blocking building block (Williams et al. on Cell,
discussed in Section II) and serves two roles here:

* the :mod:`repro.core.blocking4d` executor the paper compares 3.5D against,
* an *independent* implementation of space-time blocking used to cross-check
  the streaming ring-buffer executor — two different schedules must agree
  bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ..stencils.base import PlaneKernel
from ..stencils.grid import Field3D
from .regions import compute_range, loaded_extent
from .traffic import TrafficStats

__all__ = ["advance_tile_trapezoid"]

Range = tuple[int, int]


def advance_tile_trapezoid(
    kernel: PlaneKernel,
    src: Field3D,
    dst: Field3D,
    core: tuple[Range, Range, Range],
    dim_t: int,
    traffic: TrafficStats | None = None,
    scratch=None,
) -> None:
    """Advance one tile core by ``dim_t`` steps via a scratch trapezoid.

    ``core`` is ``((z0, z1), (y0, y1), (x0, x1))`` — the half-open region of
    final outputs this tile owns (must lie in the grid interior).  When
    ``scratch`` (a :class:`~repro.stencils.base.ScratchArena`) is given, the
    two trapezoid buffers come from it instead of being freshly allocated, so
    repeated calls on same-shaped tiles allocate nothing.
    """
    r = kernel.radius
    nz, ny, nx = src.shape
    halo = r * dim_t
    (cz, cy, cx) = core
    ez = loaded_extent(cz, nz, halo)
    ey = loaded_extent(cy, ny, halo)
    ex = loaded_extent(cx, nx, halo)
    esize = src.element_size()

    # Load the extent into scratch (the external-memory read of this tile).
    extent = src.data[:, ez[0] : ez[1], ey[0] : ey[1], ex[0] : ex[1]]
    if scratch is None:
        a = extent.copy()
        b = a.copy()
    else:
        a = scratch.get("trapezoid.a", extent.shape, extent.dtype)
        b = scratch.get("trapezoid.b", extent.shape, extent.dtype)
        np.copyto(a, extent)
        np.copyto(b, a)
    if traffic is not None:
        npts = (ez[1] - ez[0]) * (ey[1] - ey[0]) * (ex[1] - ex[0])
        traffic.read(npts * esize, planes=ez[1] - ez[0])
    for t in range(1, dim_t + 1):
        rz = compute_range(cz, nz, r, dim_t, t)
        ry = compute_range(cy, ny, r, dim_t, t)
        rx = compute_range(cx, nx, r, dim_t, t)
        # b starts as a copy of a, so untouched cells (stale or constant
        # boundary) carry forward; only the trapezoid region is recomputed.
        np.copyto(b, a)
        yr = (ry[0] - ey[0], ry[1] - ey[0])
        xr = (rx[0] - ex[0], rx[1] - ex[0])
        for z in range(rz[0], rz[1]):
            lz = z - ez[0]
            planes = [a[:, lz + dz] for dz in range(-r, r + 1)]
            kernel.compute_plane(b[:, lz], planes, yr, xr, gz=z, gy0=ey[0], gx0=ex[0])
        if traffic is not None:
            npts = (rz[1] - rz[0]) * (ry[1] - ry[0]) * (rx[1] - rx[0])
            traffic.update(npts, kernel.ops_per_update)
        a, b = b, a

    # Write the core back (the external-memory write of this tile).
    dst.data[:, cz[0] : cz[1], cy[0] : cy[1], cx[0] : cx[1]] = a[
        :,
        cz[0] - ez[0] : cz[1] - ez[0],
        cy[0] - ey[0] : cy[1] - ey[0],
        cx[0] - ex[0] : cx[1] - ex[0],
    ]
    if traffic is not None:
        npts = (cz[1] - cz[0]) * (cy[1] - cy[0]) * (cx[1] - cx[0])
        traffic.write(npts * esize, planes=cz[1] - cz[0])
