#!/usr/bin/env python
"""Serve-daemon load generator: overload behavior, latency SLOs, zero loss.

Not a paper artifact — the paper runs one sweep at a time — but the
acceptance bar for the serving layer: a long-lived daemon fed *mixed*
traffic at ~2x its measured capacity must degrade gracefully, not
catastrophically.  Concretely, the gates asserted here:

* **Bounded behavior** — the queue never exceeds its hard capacity and
  every refused submit carries an explicit reason (no crash, no silent
  drop, no unbounded growth).
* **Latency SLO** — the p99 acceptance-to-completion latency of jobs that
  *completed* stays under ``base_service_time x (queue_cap / workers) x 3``
  (the worst honest queueing delay, with margin): accepted work is
  served promptly *because* the excess was shed at the door.
* **Explicit shedding** — at 2x capacity the daemon must actually refuse
  or displace some jobs; a run with zero rejections means the overload
  never materialized and the measurement is void.
* **Exit-code contract** — every terminal job maps to the 0/2/3/4
  verdict table, failures carry reasons.
* **Warm plans** — the plan cache (bound backends keyed by job
  signature) serves at least half of the mixed traffic from cache.
* **Zero-loss drain** — the final drain leaves no accepted job
  non-terminal.
* **Ledger reconciliation** — the per-tenant usage ledger's sums
  (site updates, bytes, cpu time, outcome counts) equal the daemon's
  global counters *exactly* after the drain: billing agrees with
  metering on a 3-tenant mixed-traffic run.

The whole exchange runs over the real unix-socket wire path.  Arm
``serve.*`` fault sites via ``$REPRO_FAULTS`` to smoke the same gates
under injected accept-drops/stalls/deadline storms (the CI serve job
does).  Results land in ``BENCH_serve.json`` for artifact upload.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # 30 s soak
    PYTHONPATH=src python benchmarks/bench_serve.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

import numpy as np

from repro.perf import format_table
from repro.serve import JobServer, JobSpec, ServeClient, ServeCore

#: the SLO multiplier: p99 <= base_svc * (queue_cap / workers) * SLO_FACTOR
SLO_FACTOR = 3.0
#: absolute floor added to the gate so millisecond-scale jobs don't flap
SLO_MARGIN_S = 0.5


def percentile(values: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(values), q)) if values else 0.0


def _submit_retry(client: ServeClient, doc: dict, attempts: int = 8) -> dict:
    """Submit, honoring the accept-drop contract: 'dropped' is retryable."""
    reply = client.submit(doc)
    while not reply.get("ok") and reply.get("error") == "dropped" and attempts:
        attempts -= 1
        reply = client.submit(doc)
    return reply


def _spec(rng, grid: int, steps: int, deadline_frac: float) -> JobSpec:
    """One draw of the mixed-traffic job distribution."""
    return JobSpec(
        kernel="7pt",
        grid=grid,
        steps=steps,
        dim_t=2,
        tile=8,
        seed=int(rng.integers(0, 4)),
        priority=int(rng.integers(0, 3)),
        tenant=f"tenant-{int(rng.integers(0, 3))}",
        deadline_s=(30.0 if rng.random() < deadline_frac else None),
        verify=bool(rng.random() < 0.5),
    )


def run_load(args) -> dict:
    state_dir = tempfile.mkdtemp(prefix="repro-bench-serve-")
    sock = os.path.join(state_dir, "bench.sock")
    core = ServeCore(
        state_dir,
        workers=args.workers,
        queue_cap=args.queue_cap,
        rate=10_000.0,  # the bench overloads the queue, not the bucket
        burst=10_000.0,
        tenant_quota=10_000,
        fsync=False,
    )
    core.start()
    server = JobServer(core, sock)
    server.start()
    client = ServeClient(sock)
    rng = np.random.default_rng(args.seed)

    # -- measure the base service time (warm the plan cache first) -----
    # calibrate on jobs that *complete*, using the server-stamped execution
    # time (started -> finished) so neither queueing delay nor injected
    # faults (stalls, deadline storms eating early probes) skew the base;
    # the min over several probes is the clean-path service time
    exec_times: list[float] = []
    for attempt in range(16):
        probe = _submit_retry(
            client,
            JobSpec(grid=args.grid, steps=args.steps, dim_t=2, tile=8,
                    seed=attempt % 4).to_dict(),
        )
        assert probe.get("ok"), probe
        job = client.wait(probe["id"], timeout=60.0)["job"]
        if job["code"] in (0, 3) and job.get("started_s") is not None:
            exec_times.append(job["finished_s"] - job["started_s"])
            if len(exec_times) >= 4:
                break
    assert exec_times, "no probe job completed; cannot calibrate"
    # capacity uses the *cheapest* service time (aggressive overload);
    # the latency gate uses the *mean* (honest queueing bound)
    base_svc = max(min(exec_times), 1e-4)
    mean_svc = max(sum(exec_times) / len(exec_times), base_svc)
    capacity = args.workers / base_svc  # jobs/s the workers can clear

    # -- mixed traffic at 2x capacity ----------------------------------
    target_rate = 2.0 * capacity
    interval = 1.0 / target_rate
    accepted: list[str] = []
    refusals: list[str] = []
    missing_reason = 0
    depth_samples: list[int] = []
    t_start = time.perf_counter()
    next_submit = t_start
    while time.perf_counter() - t_start < args.duration:
        now = time.perf_counter()
        if now < next_submit:
            time.sleep(min(next_submit - now, interval))
            continue
        next_submit += interval
        reply = client.submit(
            _spec(rng, args.grid, args.steps, args.deadline_frac).to_dict()
        )
        if reply.get("ok"):
            accepted.append(reply["id"])
        else:
            refusals.append(reply.get("reason", ""))
            if not reply.get("reason"):
                missing_reason += 1
        depth_samples.append(
            int(client.stats()["stats"]["queue_depth"])
        )
    elapsed_load = time.perf_counter() - t_start

    # -- wait out the backlog, then drain ------------------------------
    wait_deadline = time.monotonic() + max(60.0, 10 * args.duration)
    while time.monotonic() < wait_deadline:
        jobs = {j["id"]: j for j in client.jobs()["jobs"]}
        if all(jobs[i]["code"] is not None for i in accepted if i in jobs):
            break
        time.sleep(0.05)
    client.drain()
    t_drain = time.monotonic()
    while core.counters and time.monotonic() - t_drain < 60.0:
        if all(r.terminal for r in core.jobs()):
            break
        time.sleep(0.05)
    server.stop()

    jobs = {r.id: r for r in core.jobs()}
    stats = core.stats()
    completed = [r for r in jobs.values() if r.status in ("done", "degraded")]
    shed = [r for r in jobs.values() if r.status == "shed"]
    failed = [r for r in jobs.values() if r.status in ("failed", "cancelled")]
    non_terminal = [r for r in jobs.values() if not r.terminal]
    latencies = [r.latency_s for r in completed if r.latency_s is not None]
    contract_violations = [
        r.id for r in jobs.values()
        if r.terminal and (
            r.code not in (0, 2, 3, 4)
            or (r.status in ("failed", "shed", "cancelled") and not r.reason)
            or (r.status == "degraded" and not r.degradations)
        )
    ]
    # worst honest wait: drain a full queue plus the job in service, each
    # slot costing the mean service time, with SLO_FACTOR margin for
    # preemption/degradation churn
    slo_s = (
        mean_svc * (args.queue_cap / args.workers + 1) * SLO_FACTOR
        + SLO_MARGIN_S
    )
    return {
        "workers": args.workers,
        "queue_cap": args.queue_cap,
        "grid": args.grid,
        "steps": args.steps,
        "duration_s": elapsed_load,
        "base_service_s": base_svc,
        "mean_service_s": mean_svc,
        "capacity_jobs_per_s": capacity,
        "offered_jobs_per_s": target_rate,
        "submitted": len(accepted) + len(refusals),
        "accepted": len(accepted),
        "refused": len(refusals),
        "refusal_reasons": sorted({r.split(" (")[0] for r in refusals if r}),
        "missing_reason": missing_reason,
        "completed": len(completed),
        "degraded": sum(1 for r in completed if r.status == "degraded"),
        "shed_after_accept": len(shed),
        "failed": len(failed),
        "non_terminal_after_drain": len(non_terminal),
        "contract_violations": contract_violations,
        "jobs_per_s": len(completed) / elapsed_load if elapsed_load else 0.0,
        "shed_rate": (len(refusals) + len(shed))
        / max(1, len(accepted) + len(refusals)),
        "latency_p50_s": percentile(latencies, 50),
        "latency_p99_s": percentile(latencies, 99),
        "slo_p99_s": slo_s,
        "max_queue_depth": max(depth_samples, default=0),
        "plan_cache": stats["plan_cache"],
        "counters": stats["counters"],
        # streaming sketches maintained by the daemon itself (merged
        # losslessly across the worker pool)
        "queue_wait_p99_s": (stats.get("latency", {})
                             .get("serve.queue_wait_s", {}).get("p99", 0.0)),
        "service_p99_s": (stats.get("latency", {})
                          .get("serve.service_s", {}).get("p99", 0.0)),
        "tenants": stats.get("tenants", {}),
        "ledger_totals": stats.get("ledger_totals", {}),
        "ledger_mismatches": core.ledger_reconciliation(),
        "faults_armed": os.environ.get("REPRO_FAULTS", ""),
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="5 s load phase (CI smoke mode)")
    ap.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                    help="load-phase length (default 30; 5 with --quick)")
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--queue-cap", type=int, default=8)
    ap.add_argument("--grid", type=int, default=12)
    ap.add_argument("--steps", type=int, default=6)
    ap.add_argument("--deadline-frac", type=float, default=0.2,
                    help="fraction of jobs carrying a deadline (default 0.2)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="write the machine-readable report to PATH")
    args = ap.parse_args(argv)
    if args.duration is None:
        args.duration = 5.0 if args.quick else 30.0

    res = run_load(args)

    print(f"\n== serve load  {res['workers']} workers  queue "
          f"{res['queue_cap']}  {res['grid']}^3 x {res['steps']} steps  "
          f"{res['duration_s']:.1f} s at 2x capacity ==")
    print(format_table(
        ["metric", "value"],
        [
            ("base service time", f"{res['base_service_s'] * 1e3:.1f} ms"),
            ("capacity", f"{res['capacity_jobs_per_s']:.1f} jobs/s"),
            ("offered", f"{res['offered_jobs_per_s']:.1f} jobs/s"),
            ("accepted / refused",
             f"{res['accepted']} / {res['refused']}"),
            ("completed (degraded)",
             f"{res['completed']} ({res['degraded']})"),
            ("shed after accept / failed",
             f"{res['shed_after_accept']} / {res['failed']}"),
            ("throughput", f"{res['jobs_per_s']:.1f} jobs/s"),
            ("shed rate", f"{100 * res['shed_rate']:.1f} %"),
            ("latency p50 / p99",
             f"{res['latency_p50_s'] * 1e3:.0f} / "
             f"{res['latency_p99_s'] * 1e3:.0f} ms"),
            ("p99 SLO gate", f"{res['slo_p99_s'] * 1e3:.0f} ms"),
            ("max queue depth",
             f"{res['max_queue_depth']} of {res['queue_cap']}"),
            ("plan cache hit rate",
             f"{100 * res['plan_cache']['hit_rate']:.1f} %"),
            ("faults armed", res["faults_armed"] or "-"),
        ],
    ))
    if res["refusal_reasons"]:
        print("refusal reasons seen:")
        for reason in res["refusal_reasons"]:
            print(f"  - {reason}")

    failures = []
    if res["latency_p99_s"] > res["slo_p99_s"]:
        failures.append(
            f"p99 {res['latency_p99_s']:.3f}s exceeds the SLO gate "
            f"{res['slo_p99_s']:.3f}s"
        )
    if res["refused"] + res["shed_after_accept"] == 0:
        failures.append("no shedding at 2x capacity: overload never bit")
    if res["missing_reason"]:
        failures.append(
            f"{res['missing_reason']} refusal(s) carried no reason"
        )
    if res["non_terminal_after_drain"]:
        failures.append(
            f"{res['non_terminal_after_drain']} accepted job(s) lost by drain"
        )
    if res["contract_violations"]:
        failures.append(
            f"exit-code contract violated: {res['contract_violations'][:5]}"
        )
    if res["max_queue_depth"] > res["queue_cap"]:
        failures.append(
            f"queue depth {res['max_queue_depth']} exceeded the hard cap"
        )
    if res["plan_cache"]["hit_rate"] < 0.5:
        failures.append(
            f"plan-cache hit rate {res['plan_cache']['hit_rate']:.2f} < 0.5"
        )
    if res["ledger_mismatches"]:
        failures.append(
            "ledger does not reconcile with the global counters: "
            + "; ".join(res["ledger_mismatches"])
        )
    if len(res["tenants"]) < 3:
        failures.append(
            f"mixed traffic only reached {len(res['tenants'])} tenant(s); "
            "the per-tenant accounting gate needs all 3"
        )
    res["failures"] = failures
    res["ok"] = not failures

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(res, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.json}")

    if failures:
        print("\nFAILED gates:")
        for f in failures:
            print(f"  ! {f}")
        return 1
    print("\nall serve gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
