"""Channel flow past a spherical obstacle — LBM with bounce-back geometry.

Fluid is driven through a walled channel (constant-velocity inlet shell at
one end) around a solid sphere; the obstacle cells use half-way bounce-back.
Demonstrates flag-field geometry flowing through the same 3.5D machinery,
plus the parallel (threaded) executor.

Run:  python examples/lbm_channel_obstacle.py
"""

import numpy as np

from repro.lbm import (
    Lattice,
    channel_with_sphere,
    density,
    make_kernel,
    run_lbm,
    velocity,
)
from repro.runtime import ParallelBlocking35D


def main() -> None:
    nz, ny, nx = 24, 24, 48
    u_in = 0.05
    omega = 1.2
    steps = 40

    flags = channel_with_sphere((nz, ny, nx), sphere_radius=5.0)
    rho = np.ones((nz, ny, nx))
    u = np.zeros((3, nz, ny, nx))
    u[2] = u_in  # initial uniform flow along +x
    lattice = Lattice.from_moments(rho, u, flags)

    print("Channel flow past a sphere (D3Q19, threaded 3.5D)")
    print(f"  lattice {nz}x{ny}x{nx}, sphere r=5, inlet u_x={u_in}, "
          f"{flags.mean() * 100:.1f}% solid cells")

    kernel = make_kernel(lattice, omega=omega)
    executor = ParallelBlocking35D(kernel, dim_t=2, tile_y=20, tile_x=28, n_threads=4)
    f_out = executor.run(lattice.f, steps)

    # cross-check vs the serial naive sweep
    reference = run_lbm(lattice, steps, omega=omega)
    assert np.array_equal(f_out.data, reference.f.data)

    uu = velocity(f_out)
    fluid = lattice.fluid_mask()
    mid_z, mid_y = nz // 2, ny // 2
    sphere_x = nx // 3

    print("  u_x along the channel centerline:")
    for x in range(2, nx - 2, 6):
        if flags[mid_z, mid_y, x]:
            print(f"    x={x:3d}: (inside solid sphere)")
            continue
        print(f"    x={x:3d}: {uu[2, mid_z, mid_y, x]:+.4f}")

    # flow accelerates around the obstruction: off-axis speed near the
    # sphere exceeds the far-field centerline speed
    side = uu[2, mid_z, 3, sphere_x]
    far = uu[2, mid_z, mid_y, nx - 6]
    print(f"  side-gap u_x near sphere: {side:+.4f} vs far field {far:+.4f}")
    print(f"  density range (fluid)   : "
          f"[{density(f_out)[fluid].min():.4f}, {density(f_out)[fluid].max():.4f}]")
    assert (density(f_out)[fluid] > 0).all()
    print("  threaded 3.5D result matches the serial naive sweep bit-for-bit")


if __name__ == "__main__":
    main()
