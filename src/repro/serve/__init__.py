"""Stencil-as-a-service: a long-lived, overload-safe sweep daemon.

``repro serve`` turns the one-shot ``repro run`` contract into a service:
jobs arrive over a unix socket, pass token-bucket + quota + bounded-queue
admission control, execute round-by-round (checkpointable, preemptible,
cancellable at every round boundary), and finish with the same
exit-code-style verdicts the CLI uses (0 clean, 2 rejected/shed, 3
degraded-but-correct, 4 failed).  The journal makes acceptance durable:
SIGTERM drains with zero accepted-job loss and a SIGKILL mid-job recovers
on restart from the journal plus per-job checkpoints.
"""

from .admission import (
    AdmissionController,
    AdmissionDecision,
    BoundedPriorityQueue,
    TokenBucket,
)
from .client import ServeClient, ServeUnavailable
from .journal import JobJournal, JournalReplay
from .protocol import (
    PROTOCOL_VERSION,
    STATUS_CODES,
    TERMINAL_STATUSES,
    JobRecord,
    JobSpec,
    read_message,
    write_message,
)
from .server import JobServer, PlanCache, ServeCore

__all__ = [
    "PROTOCOL_VERSION",
    "STATUS_CODES",
    "TERMINAL_STATUSES",
    "AdmissionController",
    "AdmissionDecision",
    "BoundedPriorityQueue",
    "JobJournal",
    "JobRecord",
    "JobServer",
    "JobSpec",
    "JournalReplay",
    "PlanCache",
    "ServeClient",
    "ServeCore",
    "ServeUnavailable",
    "TokenBucket",
    "read_message",
    "write_message",
]
