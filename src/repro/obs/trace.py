"""Low-overhead span tracer with per-thread ring buffers.

The tracer is a process-wide singleton (:data:`TRACE`).  It is *disarmed*
by default: ``TRACE.span(...)`` then returns a shared no-op context
manager, and the cost of the call is one attribute lookup plus one
function call.  Hot loops (per z-iteration, per tile) go one step
further and branch on ``TRACE.armed`` explicitly so the disarmed path is
a plain loop with zero tracer calls:

    if TRACE.armed:
        with TRACE.span("z_iter", k=k):
            runner.run_iteration(k)
    else:
        runner.run_iteration(k)

When armed, each completed span is appended to a fixed-capacity ring
buffer owned by the recording thread — no locks on the hot path; the
only lock is taken once per thread to register its buffer.  When a ring
buffer wraps, the oldest records are overwritten and counted as dropped.

Span taxonomy (see docs/observability.md):

``sweep``        one executor ``run()`` call (attrs: executor, steps)
``round``        one blocked round of ``round_t`` time steps
``tile``         one XY tile within a round
``z_iter``       one z-iteration (LOAD/COMPUTE/STORE group) of a tile
``guarded_run``  one GuardedSweep.run (wraps all rounds + checkpoints)
``guard_round``  one guarded round incl. retries/health checks
``halo_exchange``/``rank_compute``  distributed phases per round
``halo_wait``    one rank's wait on in-flight ghost planes (overlap path);
                 also the failure-detection point for rank crashes
``spmd``         one WorkerPool.run_spmd launch (threaded executors)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["SpanRecord", "SpanTracer", "TRACE", "span"]


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One completed span, as stored in a thread's ring buffer."""

    name: str
    tid: int
    thread_name: str
    start_ns: int
    dur_ns: int
    depth: int
    attrs: dict[str, Any]

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.dur_ns


class _NullSpan:
    """Shared no-op context manager returned while the tracer is disarmed."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _ThreadBuf:
    """Per-thread ring buffer of SpanRecords plus the nesting depth."""

    __slots__ = ("tid", "thread_name", "capacity", "records", "head",
                 "total", "depth", "epoch")

    def __init__(self, capacity: int, epoch: int) -> None:
        t = threading.current_thread()
        self.tid = t.ident or 0
        self.thread_name = t.name
        self.capacity = capacity
        self.records: list[SpanRecord | None] = [None] * capacity
        self.head = 0          # next write position
        self.total = 0         # spans ever recorded
        self.depth = 0         # current nesting depth of open spans
        self.epoch = epoch

    def append(self, rec: SpanRecord) -> None:
        self.records[self.head] = rec
        self.head = (self.head + 1) % self.capacity
        self.total += 1

    @property
    def dropped(self) -> int:
        return max(0, self.total - self.capacity)

    def events(self) -> list[SpanRecord]:
        if self.total < self.capacity:
            out = self.records[: self.total]
        else:
            out = self.records[self.head :] + self.records[: self.head]
        return [r for r in out if r is not None]


class _Span:
    """An open span; closing it appends a SpanRecord to the thread buffer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_buf", "_start_ns", "_depth")

    def __init__(self, tracer: "SpanTracer", name: str,
                 attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        buf = self._tracer._thread_buf()
        self._buf = buf
        self._depth = buf.depth
        buf.depth += 1
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: object) -> None:
        end = time.perf_counter_ns()
        buf = self._buf
        buf.depth = self._depth
        buf.append(SpanRecord(
            name=self._name,
            tid=buf.tid,
            thread_name=buf.thread_name,
            start_ns=self._start_ns,
            dur_ns=end - self._start_ns,
            depth=self._depth,
            attrs=self._attrs,
        ))


class SpanTracer:
    """Process-wide span tracer.  See module docstring for the contract."""

    DEFAULT_CAPACITY = 65536

    def __init__(self) -> None:
        self.armed = False
        self._capacity = self.DEFAULT_CAPACITY
        self._epoch = 0
        self._local = threading.local()
        self._lock = threading.Lock()
        self._bufs: list[_ThreadBuf] = []

    # -- lifecycle -----------------------------------------------------
    def arm(self, capacity: int | None = None) -> None:
        """Start recording spans (clears any previous recording).

        ``capacity`` sizes the per-thread ring buffers for *this* recording
        only; omitting it restores :data:`DEFAULT_CAPACITY` rather than
        inheriting whatever a previous caller picked.
        """
        self.reset()
        if capacity is None:
            self._capacity = self.DEFAULT_CAPACITY
        else:
            if capacity < 1:
                raise ValueError("capacity must be >= 1")
            self._capacity = capacity
        self.armed = True

    def disarm(self) -> None:
        """Stop recording; already-recorded spans stay readable."""
        self.armed = False

    def reset(self) -> None:
        """Drop all recorded spans and detach per-thread buffers."""
        with self._lock:
            self._epoch += 1
            self._bufs = []

    # -- recording -----------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Any:
        """Open a span; a no-op context manager when disarmed."""
        if not self.armed:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def _thread_buf(self) -> _ThreadBuf:
        buf = getattr(self._local, "buf", None)
        if buf is None or buf.epoch != self._epoch:
            buf = _ThreadBuf(self._capacity, self._epoch)
            with self._lock:
                # re-check: reset() may have bumped the epoch underneath us
                if buf.epoch == self._epoch:
                    self._bufs.append(buf)
            self._local.buf = buf
        return buf

    # -- reading -------------------------------------------------------
    def events(self) -> list[SpanRecord]:
        """All recorded spans from every thread, sorted by start time."""
        with self._lock:
            bufs = list(self._bufs)
        out: list[SpanRecord] = []
        for buf in bufs:
            out.extend(buf.events())
        out.sort(key=lambda r: (r.start_ns, r.depth))
        return out

    def dropped(self) -> int:
        """Spans lost to ring-buffer wraparound, across all threads."""
        with self._lock:
            return sum(buf.dropped for buf in self._bufs)

    def thread_names(self) -> dict[int, str]:
        with self._lock:
            return {buf.tid: buf.thread_name for buf in self._bufs}

    def iter_by_thread(self) -> Iterator[tuple[int, list[SpanRecord]]]:
        with self._lock:
            bufs = list(self._bufs)
        for buf in bufs:
            yield buf.tid, buf.events()


TRACE = SpanTracer()


def span(name: str, **attrs: Any) -> Any:
    """Module-level convenience for ``TRACE.span`` (not for hot loops)."""
    return TRACE.span(name, **attrs)
