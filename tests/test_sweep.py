"""Tests for the structured sweep/CSV export and the Fermi-spec predictions."""

import csv
import io

import pytest

from repro.machine import FERMI, GTX_285, is_bandwidth_bound
from repro.perf.sweep import (
    all_records,
    comparison_records,
    figure4_records,
    figure5_records,
    to_csv,
)


class TestRecords:
    def test_figure4_coverage(self):
        recs = figure4_records()
        kernels = {(r["kernel"], r["platform"]) for r in recs}
        assert kernels == {("lbm", "cpu"), ("7pt", "cpu"), ("7pt", "gpu"), ("lbm", "gpu")}
        # every record has a throughput
        assert all(r["mupdates_per_s"] > 0 for r in recs)

    def test_paper_anchors_attached(self):
        recs = figure4_records()
        anchored = [r for r in recs if r["paper_mupdates_per_s"] != ""]
        assert len(anchored) >= 10
        for r in anchored:
            assert r["mupdates_per_s"] == pytest.approx(
                r["paper_mupdates_per_s"], rel=0.15
            )

    def test_figure5_records(self):
        recs = figure5_records()
        assert len(recs) == 12  # 6 stages per figure
        assert {r["figure"] for r in recs} == {"5a_lbm_cpu", "5b_7pt_gpu"}
        for r in recs:
            assert r["ratio"] == pytest.approx(1.0, abs=0.15)

    def test_comparison_records(self):
        recs = comparison_records()
        assert len(recs) == 6
        for r in recs:
            assert r["modeled_speedup"] == pytest.approx(r["paper_speedup"], rel=0.15)

    def test_all_records_keys(self):
        assert set(all_records()) == {"figure4", "figure5", "comparisons"}


class TestCsv:
    def test_round_trip(self):
        text = to_csv(figure5_records())
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 12
        assert rows[0]["figure"] == "5a_lbm_cpu"
        assert float(rows[0]["model_mups"]) > 0

    def test_empty(self):
        assert to_csv([]) == ""


class TestFermiPredictions:
    """Section VIII's forward-looking claims, checked on the Fermi spec."""

    def test_lbm_sp_blocking_becomes_feasible(self):
        from dataclasses import replace

        from repro.gpu import GTX285_SM, plan_lbm_gpu

        sm = replace(
            GTX285_SM,
            shared_mem_bytes=FERMI.llc_bytes,
            register_file_bytes=FERMI.blocking_capacity,
        )
        plan = plan_lbm_gpu("sp", machine=FERMI, sm=sm)
        assert plan.feasible  # "kernels like LBM SP should benefit"
        assert plan.dim_x > 2 * plan.dim_t

    def test_dp_stencils_become_bandwidth_bound(self):
        # GTX 285: DP compute bound; Fermi's 5.5X DP rate flips it
        assert not is_bandwidth_bound(GTX_285, "dp", 1.0, derated=True)
        assert is_bandwidth_bound(FERMI, "dp", 1.0, derated=True)

    def test_fermi_needs_35d_for_dp(self):
        """'we believe 3.5D blocking would be required for DP ... on GPU too'"""
        from repro.core import min_dim_t

        dim_t = min_dim_t(1.0, FERMI.bytes_per_op("dp", derated=True))
        assert dim_t >= 2
