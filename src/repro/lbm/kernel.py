"""D3Q19 LBM as a radius-1 plane kernel (fused stream + collide, pull scheme).

The paper's LBM time step reads 19 values (plus the flag), computes new
values, and propagates them to the 18 neighbors and the local site (Section
IV-B).  We implement the equivalent *pull* formulation, which makes every
cell's new state a pure function of its 27-neighborhood at the previous time
step:

1. gather ``f_i(x - c_i, t)`` for every direction (streaming),
2. where the source neighbor is a solid cell, substitute the cell's own
   opposite-direction value ``f_{opp(i)}(x, t)`` (half-way bounce-back),
3. BGK-collide the gathered values (collision),
4. solid cells themselves are left unchanged.

Radius 1 in the L-infinity norm, 19 components, 259 ops per update — plugging
this kernel into the generic blocking executors yields naive, temporally
blocked and 3.5D-blocked LBM with bit-identical physics.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..stencils.base import PlaneKernel, ScratchArena, validate_footprint
from .collision import (
    FLOPS_PER_UPDATE,
    OPS_PER_UPDATE,
    collide_bgk,
    collide_bgk_inplace,
)
from .d3q19 import N_DIRECTIONS, OPPOSITE, VELOCITIES
from .lattice import CellType, element_size_with_flag

__all__ = ["LBMKernel"]


class LBMKernel(PlaneKernel):
    """Fused D3Q19 stream-collide update bound to a flag field."""

    radius = 1
    ncomp = N_DIRECTIONS
    ops_per_update = OPS_PER_UPDATE
    flops_per_update = FLOPS_PER_UPDATE

    def __init__(self, flags: np.ndarray, omega: float = 1.0) -> None:
        if flags.ndim != 3:
            raise ValueError("flags must be a (nz, ny, nx) array")
        if not 0.0 < omega < 2.0:
            raise ValueError(f"BGK stability requires 0 < omega < 2, got {omega}")
        self.flags = flags
        self.omega = omega
        self._solid = flags == CellType.SOLID
        self._any_solid = bool(self._solid.any())

    def __repr__(self) -> str:
        return f"LBMKernel(omega={self.omega}, shape={self.flags.shape})"

    def element_size(self, dtype) -> int:
        """The paper's E includes the flag: 80 bytes SP, 160 bytes DP."""
        return element_size_with_flag(dtype)

    def padded_for(self, halo: int, shape: tuple[int, int, int]) -> "LBMKernel":
        """A kernel whose flag field is periodically wrapped by ``halo``."""
        if self.flags.shape != tuple(shape):
            raise ValueError(
                f"flags shape {self.flags.shape} does not match grid {shape}"
            )
        if halo == 0:
            return self
        wrapped = np.pad(self.flags, halo, mode="wrap")
        return LBMKernel(wrapped, omega=self.omega)

    def restricted_to(self, zlo: int, zhi: int) -> "LBMKernel":
        """A kernel addressing only the Z slab ``[zlo, zhi)`` of the flags."""
        if not 0 <= zlo < zhi <= self.flags.shape[0]:
            raise ValueError(f"invalid slab [{zlo}, {zhi})")
        return LBMKernel(self.flags[zlo:zhi], omega=self.omega)

    def _collide(self, f_in: np.ndarray) -> np.ndarray:
        """Collision stage; subclasses may add forcing or other physics."""
        return collide_bgk(f_in, self.omega)

    def _collide_inplace(self, f_in: np.ndarray, out: np.ndarray, arena) -> None:
        """Collision writing into ``out``, drawing temporaries from ``arena``.

        Subclasses that override :meth:`_collide` (forcing, MRT) without
        providing their own in-place variant automatically fall back to the
        allocating collision so their physics stays correct.
        """
        if type(self)._collide is not LBMKernel._collide:
            np.copyto(out, self._collide(f_in))
            return
        collide_bgk_inplace(f_in, self.omega, out, arena)

    def compute_plane(
        self,
        out: np.ndarray,
        src: Sequence[np.ndarray],
        yr: tuple[int, int],
        xr: tuple[int, int],
        gz: int = 0,
        gy0: int = 0,
        gx0: int = 0,
    ) -> None:
        validate_footprint(out.shape[1:], yr, xr, self.radius)
        y0, y1 = yr
        x0, x1 = xr
        own = src[1]
        f_in = np.empty((N_DIRECTIONS, y1 - y0, x1 - x0), dtype=out.dtype)
        for i in range(N_DIRECTIONS):
            cz, cy, cx = VELOCITIES[i]
            f_in[i] = src[1 - cz][i, y0 - cy : y1 - cy, x0 - cx : x1 - cx]
            if self._any_solid:
                # bounce back off solid source neighbors
                nbr_solid = self._solid[
                    gz - cz,
                    gy0 + y0 - cy : gy0 + y1 - cy,
                    gx0 + x0 - cx : gx0 + x1 - cx,
                ]
                if nbr_solid.any():
                    f_in[i][nbr_solid] = own[OPPOSITE[i], y0:y1, x0:x1][nbr_solid]

        f_out = self._collide(f_in)

        if self._any_solid:
            own_solid = self._solid[gz, gy0 + y0 : gy0 + y1, gx0 + x0 : gx0 + x1]
            if own_solid.any():
                # solid cells are frozen: carry the previous state forward
                f_out[:, own_solid] = own[:, y0:y1, x0:x1][:, own_solid]

        out[:, y0:y1, x0:x1] = f_out

    def compute_plane_inplace(
        self,
        out: np.ndarray,
        src: Sequence[np.ndarray],
        yr: tuple[int, int],
        xr: tuple[int, int],
        gz: int = 0,
        gy0: int = 0,
        gx0: int = 0,
        *,
        arena: ScratchArena,
        seam_writable: bool = False,
    ) -> None:
        # Gather into an arena buffer and collide straight into the out
        # region.  Bounce-back and frozen-solid handling use boolean masks,
        # which still allocate — only geometries with solid cells pay that.
        # (seam_writable is accepted but unused: this path writes only the
        # target region already.)
        validate_footprint(out.shape[1:], yr, xr, self.radius)
        y0, y1 = yr
        x0, x1 = xr
        own = src[1]
        f_in = arena.get("lbm.f_in", (N_DIRECTIONS, y1 - y0, x1 - x0), out.dtype)
        for i in range(N_DIRECTIONS):
            cz, cy, cx = VELOCITIES[i]
            np.copyto(f_in[i], src[1 - cz][i, y0 - cy : y1 - cy, x0 - cx : x1 - cx])
            if self._any_solid:
                nbr_solid = self._solid[
                    gz - cz,
                    gy0 + y0 - cy : gy0 + y1 - cy,
                    gx0 + x0 - cx : gx0 + x1 - cx,
                ]
                if nbr_solid.any():
                    f_in[i][nbr_solid] = own[OPPOSITE[i], y0:y1, x0:x1][nbr_solid]

        region = out[:, y0:y1, x0:x1]
        self._collide_inplace(f_in, region, arena)

        if self._any_solid:
            own_solid = self._solid[gz, gy0 + y0 : gy0 + y1, gx0 + x0 : gx0 + x1]
            if own_solid.any():
                region[:, own_solid] = own[:, y0:y1, x0:x1][:, own_solid]
