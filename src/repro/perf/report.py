"""Plain-text table rendering for benches and EXPERIMENTS.md."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_stages", "format_comparisons", "format_phases"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_stages(stages, title: str = "") -> str:
    """Render a Figure-5-style breakdown."""
    rows = [
        (
            s.name,
            f"{s.modeled_mups:.0f}",
            f"{s.paper_mups:.0f}",
            f"{s.ratio:.2f}",
            s.mechanism,
        )
        for s in stages
    ]
    return format_table(
        ["stage", "model MU/s", "paper MU/s", "ratio", "mechanism"], rows, title
    )


def format_comparisons(rows, title: str = "") -> str:
    """Render Section VII-D comparison rows."""
    table = [
        (
            c.label,
            f"{c.prior_normalized:.0f}",
            f"{c.ours_modeled:.0f}",
            f"{c.modeled_speedup:.2f}X",
            f"{c.paper_speedup:.2f}X",
        )
        for c in rows
    ]
    return format_table(
        ["comparison", "prior (norm.)", "ours (model)", "speedup", "paper"],
        table,
        title,
    )


def format_phases(phases, title: str = "") -> str:
    """Render measured per-phase span times (see breakdown.measured_phases)."""
    rows = [
        (
            p.name,
            str(p.count),
            f"{p.total_ms:.2f}",
            f"{p.self_ms:.2f}",
            f"{100 * p.fraction:.1f}%",
        )
        for p in phases
    ]
    return format_table(
        ["phase", "count", "total ms", "self ms", "self %"], rows, title
    )
