"""The 27-point Jacobi stencil (paper Section IV-A2).

Each update reads the full 3x3x3 cube around a point; the center, face,
edge and corner neighbors are weighted by four distinct constants.  The
paper's cost accounting is 58 ops per update: 4 multiplies, 26 adds,
27 loads and 1 store, giving :math:`\\gamma = 0.14` (SP) / ``0.28`` (DP)
after spatial blocking — low enough that spatial blocking alone makes the
kernel compute bound on both architectures (Section IV-C).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .base import PlaneKernel, validate_footprint

__all__ = ["TwentySevenPointStencil"]

# Offsets grouped by neighbor class within the 3x3x3 cube.
_FACES = [
    (dz, dy, dx)
    for dz in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dx in (-1, 0, 1)
    if abs(dz) + abs(dy) + abs(dx) == 1
]
_EDGES = [
    (dz, dy, dx)
    for dz in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dx in (-1, 0, 1)
    if abs(dz) + abs(dy) + abs(dx) == 2
]
_CORNERS = [
    (dz, dy, dx)
    for dz in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dx in (-1, 0, 1)
    if abs(dz) + abs(dy) + abs(dx) == 3
]


class TwentySevenPointStencil(PlaneKernel):
    """Radius-1 box stencil with distinct center/face/edge/corner weights."""

    radius = 1
    ncomp = 1
    # 4 mults + 26 adds + 27 loads + 1 store (Section IV-A2)
    ops_per_update = 58
    flops_per_update = 30

    def __init__(
        self,
        center: float = 0.5,
        face: float = 0.02,
        edge: float = 0.01,
        corner: float = 0.005,
    ) -> None:
        self.center = center
        self.face = face
        self.edge = edge
        self.corner = corner

    def __repr__(self) -> str:
        return (
            f"TwentySevenPointStencil(center={self.center}, face={self.face}, "
            f"edge={self.edge}, corner={self.corner})"
        )

    def compute_plane(
        self,
        out: np.ndarray,
        src: Sequence[np.ndarray],
        yr: tuple[int, int],
        xr: tuple[int, int],
        gz: int = 0,
        gy0: int = 0,
        gx0: int = 0,
    ) -> None:
        validate_footprint(out.shape[1:], yr, xr, self.radius)
        y0, y1 = yr
        x0, x1 = xr
        dtype = out.dtype.type

        def shifted(dz: int, dy: int, dx: int) -> np.ndarray:
            plane = src[dz + 1][0]
            return plane[y0 + dy : y1 + dy, x0 + dx : x1 + dx]

        def group_sum(offsets) -> np.ndarray:
            acc = shifted(*offsets[0]).copy()
            for off in offsets[1:]:
                acc += shifted(*off)
            return acc

        result = dtype(self.center) * shifted(0, 0, 0)
        result += dtype(self.face) * group_sum(_FACES)
        result += dtype(self.edge) * group_sum(_EDGES)
        result += dtype(self.corner) * group_sum(_CORNERS)
        out[0, y0:y1, x0:x1] = result
