"""Metrics registry: named counters, gauges, histograms, per-thread slots.

Like the tracer, the registry is a process-wide singleton
(:data:`METRICS`) and disarmed by default.  Disarmed, every mutator
returns after a single attribute check; hot loops additionally branch on
``METRICS.armed`` so the common path contains no calls at all.

Three kinds of instruments:

* **counters** — monotonically increasing sums (``inc``).  Locked, so
  only incremented outside per-element loops (per round / per launch).
* **gauges** — last-write-wins values (``set_gauge``).
* **histograms** — bounded summaries (count/sum/min/max) of observed
  values (``observe``); raw samples are not retained.

For genuinely hot per-thread accumulation the registry hands out
**thread slots**: preallocated ``numpy.int64`` arrays indexed by worker
id, written lock-free by workers and summed only at export time
(:meth:`MetricsRegistry.to_dict`).  The executors' per-thread
``TrafficStats`` are folded in the same way via
:meth:`merge_per_thread_traffic` at sweep end.

Counter catalog (see docs/observability.md for the full list):

``traffic.bytes_read`` / ``traffic.bytes_written``  executor-accounted bytes
``traffic.updates`` / ``traffic.ops``               point updates and flops
``traffic.plane_loads`` / ``traffic.plane_stores``  ring-buffer plane moves
``barrier.wait_ns`` / ``barrier.spmd_ns``           thread idle vs launch wall
``barrier.launches``                                run_spmd calls
``comm.messages`` / ``comm.bytes`` / ``comm.dropped`` / ``comm.corrupted`` /
``comm.delayed`` / ``comm.retries``                 SimComm totals
``comm.posted`` / ``comm.completed``                nonblocking requests
``comm.overlapped_ns`` / ``comm.exposed_ns``        transfer time hidden
                                                    behind compute vs stalled
``resilience.retries`` / ``resilience.repairs`` /
``resilience.degradations`` / ``resilience.checkpoint_bytes``
``resilience.recoveries`` / ``resilience.replayed_rounds`` /
``resilience.rank_failures`` / ``resilience.buddy_bytes``
                                                    rank-failure recovery
``serve.accepted`` / ``serve.rejected`` / ``serve.shed``
                                                    admission outcomes
``serve.completed`` / ``serve.degraded`` / ``serve.failed`` /
``serve.cancelled``                                 terminal job statuses
``serve.preemptions`` / ``serve.deadline_misses``   scheduler interventions
``serve.site_updates`` / ``serve.cpu_ns``           executed lattice-site
                                                    updates and worker time
``serve.verify_cpu_ns`` / ``serve.sdc_shed``        metered integrity-tier
                                                    cpu; tiers shed under
                                                    amber overload
``sdc.checks`` / ``sdc.detected`` /
``sdc.healed`` / ``sdc.replayed_cells``             silent-data-corruption
                                                    defense activity
``serve.queue_depth`` (gauge)                       current queued jobs
``obs.dropped_spans``                               tracer ring-buffer losses

For latency distributions (queue wait, service time) plain histograms lose
the tail, so the registry also hands out **quantile sketches**
(:class:`QuantileSketch`, ``observe_quantile``): log-bucketed streaming
summaries with bounded relative error whose per-thread instances merge
losslessly (bucket counts add), giving honest p50/p90/p99 without
retaining samples.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable

import numpy as np

__all__ = ["MetricsRegistry", "METRICS", "QuantileSketch"]


class QuantileSketch:
    """Streaming quantile summary with bounded relative error.

    DDSketch-style: positive values land in log-spaced buckets indexed by
    ``ceil(log_gamma(v))`` with ``gamma = (1+a)/(1-a)`` for relative
    accuracy ``a``; zero/negative values are counted separately at 0.0.
    Bucket assignment is a pure function of the value, so merging two
    sketches (adding bucket counts) is *lossless*: a merge of per-thread
    sketches is bit-identical to one sketch fed the concatenated stream —
    the property the serve worker pool relies on.
    """

    __slots__ = ("accuracy", "_ln_gamma", "_gamma", "buckets", "zeros",
                 "count", "sum", "min", "max")

    def __init__(self, accuracy: float = 0.01) -> None:
        if not 0.0 < accuracy < 1.0:
            raise ValueError("accuracy must be in (0, 1)")
        self.accuracy = accuracy
        self._gamma = (1.0 + accuracy) / (1.0 - accuracy)
        self._ln_gamma = math.log(self._gamma)
        self.buckets: dict[int, int] = {}
        self.zeros = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zeros += 1
            return
        idx = math.ceil(math.log(value) / self._ln_gamma)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` in; both must share the same accuracy."""
        if other.accuracy != self.accuracy:
            raise ValueError("cannot merge sketches of different accuracy")
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.zeros += other.zeros
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def quantile(self, q: float) -> float:
        """The q-quantile estimate (q in [0, 1]); 0.0 on an empty sketch."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * (self.count - 1)
        seen = self.zeros
        if rank < seen:
            return 0.0 if self.min >= 0 else self.min
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if rank < seen:
                # midpoint of the bucket (gamma^(idx-1), gamma^idx]
                est = 2.0 * self._gamma ** idx / (self._gamma + 1.0)
                return min(max(est, self.min), self.max)
        return self.max

    def to_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class _Hist:
    __slots__ = ("count", "sum", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def to_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": (self.sum / self.count) if self.count else 0.0,
        }


class MetricsRegistry:
    """Process-wide counters/gauges/histograms with per-thread slots."""

    def __init__(self) -> None:
        self.armed = False
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, _Hist] = {}
        self._sketches: dict[str, QuantileSketch] = {}
        self._slots: dict[str, np.ndarray] = {}

    # -- lifecycle -----------------------------------------------------
    def arm(self) -> None:
        self.reset()
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()
            self._sketches.clear()
            self._slots.clear()

    # -- instruments ---------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        if not self.armed:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        if not self.armed:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        if not self.armed:
            return
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = _Hist()
            hist.observe(value)

    def observe_quantile(self, name: str, value: float,
                         accuracy: float = 0.01) -> None:
        """Feed one sample into the named streaming quantile sketch."""
        if not self.armed:
            return
        with self._lock:
            sk = self._sketches.get(name)
            if sk is None:
                sk = self._sketches[name] = QuantileSketch(accuracy)
            sk.observe(value)

    def merge_quantile(self, name: str, sketch: QuantileSketch) -> None:
        """Losslessly fold an externally built sketch (e.g. per-thread)."""
        if not self.armed:
            return
        with self._lock:
            sk = self._sketches.get(name)
            if sk is None:
                sk = self._sketches[name] = QuantileSketch(sketch.accuracy)
            sk.merge(sketch)

    def quantile(self, name: str, q: float) -> float | None:
        """Current q-quantile of a named sketch; None if never observed."""
        with self._lock:
            sk = self._sketches.get(name)
            return sk.quantile(q) if sk is not None else None

    def thread_slots(self, name: str, n_threads: int) -> np.ndarray:
        """Preallocated int64 per-thread accumulator, summed at export.

        Workers write ``slots[tid] += v`` lock-free; the array is
        registered under ``name`` and its per-thread values appear in
        ``to_dict()["per_thread"]``.  Call only while armed.
        """
        with self._lock:
            arr = self._slots.get(name)
            if arr is None or len(arr) != n_threads:
                arr = np.zeros(n_threads, dtype=np.int64)
                self._slots[name] = arr
            return arr

    # -- domain merges (duck-typed to avoid package cycles) ------------
    def merge_traffic(self, traffic: Any, prefix: str = "traffic") -> None:
        """Fold a TrafficStats-shaped object into the counters."""
        if not self.armed:
            return
        self.inc(f"{prefix}.bytes_read", traffic.bytes_read)
        self.inc(f"{prefix}.bytes_written", traffic.bytes_written)
        self.inc(f"{prefix}.updates", traffic.updates)
        self.inc(f"{prefix}.ops", traffic.ops)
        self.inc(f"{prefix}.plane_loads", traffic.plane_loads)
        self.inc(f"{prefix}.plane_stores", traffic.plane_stores)

    def merge_per_thread_traffic(self, stats: Iterable[Any]) -> None:
        """Record each worker's TrafficStats into per-thread slots."""
        if not self.armed:
            return
        stats = list(stats)
        if not stats:
            return
        read = self.thread_slots("traffic.bytes_read.per_thread", len(stats))
        written = self.thread_slots("traffic.bytes_written.per_thread", len(stats))
        updates = self.thread_slots("traffic.updates.per_thread", len(stats))
        for i, s in enumerate(stats):
            read[i] += s.bytes_read
            written[i] += s.bytes_written
            updates[i] += s.updates

    def merge_comm(self, comm: Any, prefix: str = "comm") -> None:
        """Fold a SimComm's aggregated CommStats into the counters."""
        if not self.armed:
            return
        total = comm.total_stats()
        self.inc(f"{prefix}.messages", total.messages_sent)
        self.inc(f"{prefix}.bytes", total.bytes_sent)
        self.inc(f"{prefix}.dropped", total.dropped)
        self.inc(f"{prefix}.corrupted", total.corrupted)
        self.inc(f"{prefix}.delayed", getattr(total, "delayed", 0))
        self.inc(f"{prefix}.retries", total.retries)
        self.inc(f"{prefix}.posted", getattr(total, "posted", 0))
        self.inc(f"{prefix}.completed", getattr(total, "completed", 0))
        self.inc(f"{prefix}.overlapped_ns", getattr(total, "overlapped_ns", 0))
        self.inc(f"{prefix}.exposed_ns", getattr(total, "exposed_ns", 0))

    def merge_recovery(self, report: Any, prefix: str = "resilience") -> None:
        """Fold a rank-failure RecoveryReport into the counters."""
        if not self.armed:
            return
        self.inc(f"{prefix}.recoveries", report.recoveries)
        self.inc(f"{prefix}.replayed_rounds", report.replayed_rounds)
        self.inc(f"{prefix}.rank_failures", len(report.failed_ranks))
        self.inc(f"{prefix}.buddy_bytes", report.buddy_bytes)

    # -- derived -------------------------------------------------------
    def barrier_wait_fraction(self) -> float | None:
        """Fraction of worker-time spent idle at the implicit barrier.

        ``sum(wait_ns) / (n_threads * sum(spmd wall ns))`` over every
        ``run_spmd`` launch; ``None`` if no threaded launches happened.
        """
        with self._lock:
            wait = self._counters.get("barrier.wait_ns")
            wall = self._counters.get("barrier.spmd_ns")
            threads = self._gauges.get("barrier.threads")
        if wait is None or not wall or not threads:
            return None
        return wait / (threads * wall)

    def counter(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            hists = {k: h.to_dict() for k, h in self._hists.items()}
            sketches = {k: s.to_dict() for k, s in self._sketches.items()}
            per_thread = {k: [int(v) for v in arr]
                          for k, arr in self._slots.items()}
        doc: dict[str, Any] = {
            "counters": counters,
            "gauges": gauges,
            "histograms": hists,
            "per_thread": per_thread,
        }
        if sketches:
            doc["quantiles"] = sketches
        frac = self.barrier_wait_fraction()
        if frac is not None:
            doc["derived"] = {"barrier_wait_fraction": frac}
        return doc


METRICS = MetricsRegistry()
