"""Working-set claims measured on the cache/TLB simulators (Sections III, VII).

* "3 XY slabs of data ... fit well in the 8 MB L3 cache even without
  explicit blocking" — a fitting hierarchy yields compulsory traffic, a
  too-small one inflates it by up to 2R+1.
* LBM's streaming access "brought into cache only to be evicted before any
  reuse" — zero hit rate on the sweep.
* Large pages cut TLB misses (the 5-20% effect of Section VI).
* The blocked buffer of Equation 1 stays resident: re-touching it hits.
"""

import pytest

from repro.machine import (
    PAGE_2M,
    PAGE_4K,
    Cache,
    MemoryHierarchy,
    Tlb,
    simulate_jacobi_sweep,
    simulate_streaming_pass,
)

from .conftest import banner, record


def test_slabs_fit_compulsory_traffic(benchmark):
    """Scaled-down LLC holding 3+ slabs -> ~1 read + 1 write per element."""
    shape, esize = (16, 32, 32), 8  # slab = 8 KB; cache = 256 KB

    def run():
        h = MemoryHierarchy([Cache(256 << 10, 64, 8)])
        r = simulate_jacobi_sweep(h, shape, esize, steps=2)
        grid = shape[0] * shape[1] * shape[2] * esize
        return r.external_bytes / (2 * 2 * grid)

    inflation = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ntraffic vs compulsory (slabs fit): {inflation:.2f}X")
    assert inflation < 1.1
    record(benchmark, inflation=inflation)


def test_slabs_spill_traffic_inflates(benchmark):
    """Cache smaller than 3 slabs -> every plane visit misses."""
    shape, esize = (16, 32, 32), 8  # slab = 8 KB; cache = 16 KB < 3 slabs

    def run():
        h = MemoryHierarchy([Cache(16 << 10, 64, 8)])
        r = simulate_jacobi_sweep(h, shape, esize, steps=2)
        grid = shape[0] * shape[1] * shape[2] * esize
        return r.external_bytes / (2 * 2 * grid)

    inflation = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ntraffic vs compulsory (slabs spill): {inflation:.2f}X")
    assert inflation > 1.8
    record(benchmark, inflation=inflation)


def test_lbm_streaming_no_reuse(benchmark):
    """Section III-A: LBM's streams have zero cache reuse within a step."""

    def run():
        h = MemoryHierarchy([Cache(512 << 10, 64, 8)])
        r = simulate_streaming_pass(h, (8, 16, 16), 80, steps=1)
        return r.level_stats[0].hit_rate

    hit_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nLBM sweep cache hit rate: {hit_rate:.3f}")
    assert hit_rate == 0.0


def test_large_pages_cut_tlb_misses(benchmark):
    """Section VI: 2 MB pages vs 4 KB pages on a strided sweep."""

    def run():
        small, large = Tlb(64, PAGE_4K), Tlb(64, PAGE_2M)
        for i in range(8192):
            small.access(i * 4096)
            large.access(i * 4096)
        return small.stats.misses, large.stats.misses

    small_m, large_m = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nTLB misses: 4KB pages {small_m}, 2MB pages {large_m} "
          f"({small_m / max(large_m, 1):.0f}X reduction)")
    assert large_m < small_m / 50
    record(benchmark, small_pages=small_m, large_pages=large_m)


def test_blocked_buffer_stays_resident(benchmark):
    """Equation 1's premise: a capacity-sized ring buffer re-hits in cache."""
    cache_bytes = 64 << 10
    buffer_bytes = 32 << 10  # half the cache, like the paper's 4 MB of 8 MB

    def run():
        c = Cache(cache_bytes, 64, 8)
        lines = buffer_bytes // 64
        for ln in range(lines):  # first pass: cold
            c.access_line(ln)
        c.reset_stats()
        for _ in range(3):  # ring reuse passes
            for ln in range(lines):
                c.access_line(ln, write=True)
        return c.stats.hit_rate

    hit_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nring-buffer re-touch hit rate: {hit_rate:.3f}")
    assert hit_rate == pytest.approx(1.0)
