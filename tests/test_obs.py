"""Tests for the observability layer: tracer, metrics, export, validation."""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.core import Blocking35D, TrafficStats
from repro.obs import METRICS, TRACE
from repro.obs.export import (
    METRICS_SCHEMA_ID,
    TRACE_SCHEMA_ID,
    aggregate_spans,
    chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.schema import load_schema, validate, validate_file
from repro.obs.validate import metered_sweep_metrics, validate_35d
from repro.perf.backends import wrap_kernel
from repro.runtime import WorkerPool
from repro.stencils import Field3D, SevenPointStencil


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with disarmed, empty globals."""
    TRACE.disarm()
    TRACE.reset()
    METRICS.disarm()
    METRICS.reset()
    yield
    TRACE.disarm()
    TRACE.reset()
    METRICS.disarm()
    METRICS.reset()


class TestSpanTracer:
    def test_disarmed_returns_shared_null_span(self):
        a = TRACE.span("x", k=1)
        b = TRACE.span("y")
        assert a is b  # no allocation on the disarmed path
        with a:
            pass  # usable as a context manager

    def test_nesting_depth_and_containment(self):
        TRACE.arm()
        with TRACE.span("sweep", executor="t"):
            with TRACE.span("round", index=0):
                with TRACE.span("tile", y0=0):
                    pass
                with TRACE.span("tile", y0=8):
                    pass
        events = TRACE.events()
        by_name = {}
        for e in events:
            by_name.setdefault(e.name, []).append(e)
        assert by_name["sweep"][0].depth == 0
        assert by_name["round"][0].depth == 1
        assert [t.depth for t in by_name["tile"]] == [2, 2]
        # children are contained in their parent's interval
        sweep = by_name["sweep"][0]
        for e in events:
            assert e.start_ns >= sweep.start_ns
            assert e.end_ns <= sweep.end_ns
        # attrs survive
        assert by_name["tile"][0].attrs == {"y0": 0}

    def test_depth_restored_after_exception(self):
        TRACE.arm()
        with pytest.raises(ValueError):
            with TRACE.span("outer"):
                with TRACE.span("inner"):
                    raise ValueError("boom")
        with TRACE.span("after"):
            pass
        after = [e for e in TRACE.events() if e.name == "after"]
        assert after[0].depth == 0

    def test_ring_buffer_drops_oldest_and_counts(self):
        TRACE.arm(capacity=16)
        for i in range(50):
            with TRACE.span("s", i=i):
                pass
        events = TRACE.events()
        assert len(events) == 16
        assert TRACE.dropped() == 50 - 16
        # the survivors are the most recent spans, in order
        assert [e.attrs["i"] for e in events] == list(range(34, 50))

    def test_rearm_resets_buffers(self):
        TRACE.arm()
        with TRACE.span("old"):
            pass
        TRACE.arm()
        assert TRACE.events() == []
        assert TRACE.dropped() == 0

    def test_events_merged_across_threads(self):
        TRACE.arm()

        def work(tid):
            with TRACE.span("spmd_body", tid=tid):
                pass

        with WorkerPool(3) as pool:
            pool.run_spmd(work)
        bodies = [e for e in TRACE.events() if e.name == "spmd_body"]
        assert sorted(e.attrs["tid"] for e in bodies) == [0, 1, 2]
        assert len({e.tid for e in bodies}) == 3


class TestDisarmedOverhead:
    def test_disarmed_overhead_within_5_percent_of_fused_sweep(self):
        """Instrumentation cost bound: the spans a 64^3 fused sweep would
        record, priced at the measured disarmed-span cost, must stay under
        5% of that sweep's wall time.

        This prices the *mechanism* (span() calls + armed checks on the
        disarmed fast path) against the real workload instead of
        differencing two noisy timings of the same code.
        """
        kernel = wrap_kernel(SevenPointStencil(), "fused-numpy")
        field = Field3D.random((64, 64, 64), dtype=np.float32, seed=3)
        ex = Blocking35D(kernel, dim_t=2, tile_y=32, tile_x=32)
        ex.run(field, 2)  # warm-up
        sweep_s = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            ex.run(field, 2)
            sweep_s = min(sweep_s, time.perf_counter() - t0)

        # count the spans an armed run would have recorded
        TRACE.arm()
        ex.run(field, 2)
        n_spans = len(TRACE.events()) + TRACE.dropped()
        TRACE.disarm()
        TRACE.reset()

        # measured cost of one disarmed span() call (the whole fast path)
        reps = 100_000
        t0 = time.perf_counter_ns()
        for _ in range(reps):
            TRACE.span("tile")
        per_span_ns = (time.perf_counter_ns() - t0) / reps

        overhead_s = n_spans * per_span_ns / 1e9
        assert overhead_s <= 0.05 * sweep_s, (
            f"disarmed tracer would cost {overhead_s * 1e3:.3f} ms on a "
            f"{sweep_s * 1e3:.1f} ms sweep ({n_spans} spans at "
            f"{per_span_ns:.0f} ns)"
        )


class TestMetricsRegistry:
    def test_disarmed_mutators_are_noops(self):
        METRICS.inc("x", 5)
        METRICS.set_gauge("g", 1)
        METRICS.observe("h", 2.0)
        doc = METRICS.to_dict()
        assert doc["counters"] == {} and doc["gauges"] == {}
        assert doc["histograms"] == {}

    def test_counters_gauges_histograms(self):
        METRICS.arm()
        METRICS.inc("a", 2)
        METRICS.inc("a", 3)
        METRICS.set_gauge("g", 7)
        for v in (1.0, 3.0):
            METRICS.observe("h", v)
        doc = METRICS.to_dict()
        assert doc["counters"]["a"] == 5
        assert doc["gauges"]["g"] == 7
        assert doc["histograms"]["h"]["count"] == 2
        assert doc["histograms"]["h"]["mean"] == 2.0

    def test_thread_slot_merge_across_pool_workers(self):
        METRICS.arm()
        n = 4
        slots = METRICS.thread_slots("work.items", n)

        def work(tid):
            for _ in range(100):
                slots[tid] += tid + 1

        with WorkerPool(n) as pool:
            pool.run_spmd(work)
        per_thread = METRICS.to_dict()["per_thread"]["work.items"]
        assert per_thread == [100, 200, 300, 400]
        # pool launches record barrier accounting while armed
        assert METRICS.counter("barrier.launches") == 1
        assert METRICS.counter("barrier.spmd_ns") > 0
        frac = METRICS.barrier_wait_fraction()
        assert frac is not None and 0.0 <= frac < 1.0

    def test_merge_per_thread_traffic(self):
        METRICS.arm()
        stats = [TrafficStats() for _ in range(3)]
        for i, s in enumerate(stats):
            s.read((i + 1) * 10)
            s.write((i + 1) * 4)
        METRICS.merge_per_thread_traffic(stats)
        per = METRICS.to_dict()["per_thread"]
        assert per["traffic.bytes_read.per_thread"] == [10, 20, 30]
        assert per["traffic.bytes_written.per_thread"] == [4, 8, 12]


class TestChromeTraceExport:
    def _traced_sweep(self, grid=16):
        kernel = SevenPointStencil()
        field = Field3D.random((grid, grid, grid), dtype=np.float32, seed=5)
        ex = Blocking35D(kernel, dim_t=2, tile_y=8, tile_x=8)
        TRACE.arm()
        ex.run(field, 2)
        return kernel, field

    def test_chrome_trace_round_trip(self, tmp_path):
        self._traced_sweep()
        path = tmp_path / "trace.json"
        write_chrome_trace(path)
        assert validate_file(str(path)) == []
        doc = json.loads(path.read_text())
        assert doc["schema"] == TRACE_SCHEMA_ID
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in xs}
        assert {"sweep", "round", "z_iter", "tile"} <= names
        # complete events carry microsecond ts/dur and args
        sweep = next(e for e in xs if e["name"] == "sweep")
        assert sweep["dur"] > 0
        assert sweep["args"]["executor"] == "blocking35d"
        # thread-name metadata present
        assert any(e["ph"] == "M" and e["name"] == "thread_name"
                   for e in doc["traceEvents"])

    def test_dropped_spans_reported(self):
        TRACE.arm(capacity=8)
        for _ in range(20):
            with TRACE.span("s"):
                pass
        doc = chrome_trace()
        assert doc["otherData"]["dropped_spans"] == 12

    def test_aggregate_spans_self_time(self):
        self._traced_sweep()
        agg = aggregate_spans(TRACE.events())
        assert agg["sweep"]["count"] == 1
        # self time excludes nested children: sweep self < sweep total
        assert agg["sweep"]["self_ns"] < agg["sweep"]["total_ns"]
        total_wall = agg["sweep"]["total_ns"]
        assert sum(e["self_ns"] for e in agg.values()) <= total_wall * 1.01


class TestMetricsExport:
    def test_metrics_document_round_trip(self, tmp_path):
        kernel = SevenPointStencil()
        field = Field3D.random((16, 16, 16), dtype=np.float32, seed=5)
        ex = Blocking35D(kernel, dim_t=2, tile_y=8, tile_x=8)
        METRICS.arm()
        traffic = TrafficStats()
        ex.run(field, 2, traffic)
        METRICS.merge_traffic(traffic)
        v = validate_35d(kernel, field, 2, traffic,
                         dim_t=2, tile_y=8, tile_x=8)
        path = tmp_path / "metrics.json"
        write_metrics(path, validation=v, run={"kernel": "7pt"})
        assert validate_file(str(path)) == []
        doc = json.loads(path.read_text())
        assert doc["schema"] == METRICS_SCHEMA_ID
        assert doc["counters"]["traffic.bytes_read"] > 0
        assert doc["validation"]["executor"] == "blocking35d"
        assert doc["run"]["kernel"] == "7pt"


class TestSchemaValidator:
    def test_rejects_missing_required(self):
        schema = load_schema(TRACE_SCHEMA_ID)
        errors = validate({"schema": TRACE_SCHEMA_ID}, schema)
        assert any("traceEvents" in e for e in errors)

    def test_rejects_bad_phase_enum(self):
        schema = load_schema(TRACE_SCHEMA_ID)
        doc = {
            "schema": TRACE_SCHEMA_ID,
            "displayTimeUnit": "ms",
            "traceEvents": [
                {"name": "s", "ph": "Z", "pid": 1, "tid": 1}
            ],
        }
        errors = validate(doc, schema)
        assert any("enum" in e or "Z" in e for e in errors)

    def test_type_mismatch(self):
        errors = validate("not an object", load_schema(METRICS_SCHEMA_ID))
        assert errors


class TestModelValidation:
    def test_kappa_within_15_percent_for_35d(self):
        """Acceptance: measured kappa joins Eq. 2 within 15%."""
        kernel = SevenPointStencil()
        field = Field3D.random((64, 64, 64), dtype=np.float32, seed=9)
        ex = Blocking35D(kernel, dim_t=2, tile_y=32, tile_x=32)
        traffic = TrafficStats()
        ex.run(field, 4, traffic)
        v = validate_35d(kernel, field, 4, traffic,
                         dim_t=2, tile_y=32, tile_x=32)
        assert v.within(0.15), (
            f"kappa measured {v.kappa_measured:.4f} vs predicted "
            f"{v.kappa_predicted:.4f} (ratio {v.kappa_ratio:.3f})"
        )
        # edge tiles clamp instead of loading ghosts: measured <= predicted
        assert v.kappa_measured <= v.kappa_predicted + 1e-9
        assert v.kappa_measured > 1.0  # cut tiles do load ghosts

    def test_uncut_tile_predicts_kappa_1(self):
        kernel = SevenPointStencil()
        field = Field3D.random((16, 16, 16), dtype=np.float32, seed=9)
        ex = Blocking35D(kernel, dim_t=2, tile_y=16, tile_x=16)
        traffic = TrafficStats()
        ex.run(field, 2, traffic)
        v = validate_35d(kernel, field, 2, traffic,
                         dim_t=2, tile_y=16, tile_x=16)
        assert v.kappa_predicted == 1.0
        assert v.kappa_measured == pytest.approx(1.0)

    def test_metered_sweep_metrics_block(self):
        kernel = SevenPointStencil()
        field = Field3D.random((16, 16, 16), dtype=np.float32, seed=9)
        block = metered_sweep_metrics(kernel, field, 2, dim_t=2, tile=8)
        assert block["bytes_read"] > 0
        assert block["kappa_ratio"] == pytest.approx(
            block["kappa_measured"] / block["kappa_predicted"])
        assert block["threads"] == 1
        assert not METRICS.armed  # restored on exit
