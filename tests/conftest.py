"""Shared fixtures and helpers for the test suite.

Also provides a fallback per-test timeout: the resilience tests exercise
deadlocks and poisoned barriers, and a regression there must fail fast, not
hang CI.  When the ``pytest-timeout`` plugin is installed (the ``test``
extra) it owns the ``timeout`` ini/marker; otherwise a SIGALRM-based
fallback below enforces the same budget on platforms that have it.
"""

from __future__ import annotations

import importlib.util
import signal

import numpy as np
import pytest

from repro.stencils import Field3D, SevenPointStencil

_HAS_TIMEOUT_PLUGIN = importlib.util.find_spec("pytest_timeout") is not None
_HAS_SIGALRM = hasattr(signal, "SIGALRM")


def pytest_addoption(parser):
    # pytest-timeout registers the 'timeout' ini key itself; mirror it only
    # when the plugin is absent so the fallback hook below can read it.
    if not _HAS_TIMEOUT_PLUGIN:
        parser.addini("timeout", "fallback per-test timeout in seconds",
                      default="0")


def pytest_configure(config):
    if not _HAS_TIMEOUT_PLUGIN:
        config.addinivalue_line(
            "markers", "timeout(seconds): per-test wall-clock budget"
        )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """SIGALRM fallback for the ``timeout`` budget when the plugin is absent."""
    limit = 0.0
    if not _HAS_TIMEOUT_PLUGIN and _HAS_SIGALRM:
        try:
            limit = float(item.config.getini("timeout") or 0)
        except (TypeError, ValueError):
            limit = 0.0
        marker = item.get_closest_marker("timeout")
        if marker and marker.args:
            limit = float(marker.args[0])
    if limit <= 0:
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the fallback timeout of {limit:.0f}s"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def seven_point() -> SevenPointStencil:
    return SevenPointStencil(alpha=0.4, beta=0.1)


@pytest.fixture
def small_field() -> Field3D:
    return Field3D.random((12, 13, 14), dtype=np.float32, seed=7)


@pytest.fixture
def medium_field() -> Field3D:
    return Field3D.random((24, 26, 28), dtype=np.float64, seed=11)


def assert_fields_equal(a: Field3D, b: Field3D) -> None:
    """Exact (bitwise) equality — blocking must not change arithmetic."""
    assert a.data.shape == b.data.shape
    assert a.data.dtype == b.data.dtype
    if not np.array_equal(a.data, b.data):
        diff = np.argwhere(a.data != b.data)
        raise AssertionError(
            f"fields differ at {len(diff)} points; first at index {tuple(diff[0])}: "
            f"{a.data[tuple(diff[0])]} vs {b.data[tuple(diff[0])]}"
        )
