"""Smoke tests: every example script runs to completion (their internal
assertions double as integration checks)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, tmp_path, monkeypatch):
    if path.stem == "export_results":
        monkeypatch.setattr(sys, "argv", [str(path), str(tmp_path / "results")])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} produced no output"


def test_every_example_is_covered():
    assert len(EXAMPLES) >= 8
