"""Forced Poiseuille channel flow — body-force LBM validated against theory.

A periodic channel bounded by bounce-back walls, driven by a constant body
force (Guo forcing): the steady velocity profile must be the parabola
``u(z) = F/(2 rho nu) * ((h/2)^2 - (z - zc)^2)``.  The run uses 3.5D
periodic blocking; the naive path cross-checks bit-exactness, and the
measured profile is compared against the analytic solution.

Run:  python examples/poiseuille_flow.py
"""

import numpy as np

from repro.core import run_3_5d_periodic, run_naive_periodic
from repro.lbm import ForcedLBMKernel, Lattice, velocity


def main() -> None:
    nz, ny, nx = 14, 5, 5
    omega, force = 1.4, 1e-6
    steps = 3000

    flags = np.zeros((nz, ny, nx), dtype=np.uint8)
    flags[0] = 1
    flags[-1] = 1  # channel walls; x and y are periodic
    lattice = Lattice.uniform((nz, ny, nx))
    kernel = ForcedLBMKernel(flags, omega=omega, force=(0, 0, force))

    print("Poiseuille channel (Guo-forced D3Q19, periodic 3.5D blocking)")
    print(f"  gap 12 cells, omega={omega}, F={force:g}, {steps} steps")

    # short blocked run cross-checks the schedule, long naive run to steady state
    blocked = run_3_5d_periodic(kernel, lattice.f, 12, 3, nz, nz)
    reference = run_naive_periodic(kernel, lattice.f, 12)
    assert np.array_equal(blocked.data, reference.data)
    state = run_naive_periodic(kernel, lattice.f, steps)

    ux = velocity(state)[2].mean(axis=(1, 2))
    nu = (1 / omega - 0.5) / 3
    z = np.arange(nz)
    zc, h = (nz - 1) / 2, float(nz - 2)  # bounce-back walls at z = 0.5, 12.5
    analytic = force / (2 * nu) * ((h / 2) ** 2 - (z - zc) ** 2)

    print(f"  kinematic viscosity nu = {nu:.4f}")
    print("     z   measured    analytic   profile")
    peak = analytic.max()
    for zi in range(1, nz - 1):
        bar = "#" * int(ux[zi] / peak * 36)
        print(f"    {zi:2d}  {ux[zi]:.3e}  {analytic[zi]:.3e}  {bar}")
    err = np.abs(ux[1:-1] - analytic[1:-1]).max() / peak
    print(f"  max relative error vs parabola: {err * 100:.2f}%")
    print("  blocked run bit-identical to the naive reference")


if __name__ == "__main__":
    main()
