"""Body-force LBM (Guo forcing) — driven flows like Poiseuille channels.

Adds a constant body force (e.g. a pressure gradient or gravity) to the BGK
update using the scheme of Guo, Zheng & Shi (2002):

.. math::

   u = \\frac{1}{\\rho}\\Bigl(\\sum_i c_i f_i + \\tfrac{F}{2}\\Bigr), \\qquad
   F_i = \\Bigl(1-\\tfrac{\\omega}{2}\\Bigr) w_i
         \\Bigl[3 (c_i - u) + 9 (c_i \\cdot u)\\, c_i\\Bigr] \\cdot F

   f_i' = f_i - \\omega (f_i - f_i^{eq}(\\rho, u)) + F_i

The force is constant per run, so the fused pull update stays a pure
function of the 27-neighborhood and every blocking schedule remains
applicable (and bit-exact).  The physics validation suite uses this to
reproduce the parabolic Poiseuille profile.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .collision import equilibrium
from .d3q19 import N_DIRECTIONS, VELOCITIES, WEIGHTS
from .kernel import LBMKernel

__all__ = ["collide_bgk_forced", "ForcedLBMKernel"]


def collide_bgk_forced(
    f: np.ndarray, omega: float, force: tuple[float, float, float]
) -> np.ndarray:
    """BGK collision with a constant Guo body force ``(Fz, Fy, Fx)``."""
    f = np.asarray(f)
    dtype = f.dtype
    fz, fy, fx = (dtype.type(c) for c in force)
    # sequential reduction: see collide_bgk for the bit-exactness rationale
    rho = f[0].copy()
    for i in range(1, N_DIRECTIONS):
        rho += f[i]
    u = np.zeros((3,) + f.shape[1:], dtype=dtype)
    for i in range(N_DIRECTIONS):
        cz, cy, cx = VELOCITIES[i]
        if cz:
            u[0] += dtype.type(cz) * f[i]
        if cy:
            u[1] += dtype.type(cy) * f[i]
        if cx:
            u[2] += dtype.type(cx) * f[i]
    half = dtype.type(0.5)
    u[0] += half * fz
    u[1] += half * fy
    u[2] += half * fx
    inv_rho = dtype.type(1.0) / rho
    u *= inv_rho
    feq = equilibrium(rho, u)
    w = dtype.type(omega)
    out = f + w * (feq - f)
    pref = dtype.type(1.0) - half * w
    three = dtype.type(3.0)
    nine = dtype.type(9.0)
    for i in range(N_DIRECTIONS):
        cz, cy, cx = (dtype.type(v) for v in VELOCITIES[i])
        cu = cz * u[0] + cy * u[1] + cx * u[2]
        term = (
            (three * (cz - u[0]) + nine * cu * cz) * fz
            + (three * (cy - u[1]) + nine * cu * cy) * fy
            + (three * (cx - u[2]) + nine * cu * cx) * fx
        )
        out[i] += pref * dtype.type(WEIGHTS[i]) * term
    return out


class ForcedLBMKernel(LBMKernel):
    """D3Q19 pull stream + Guo-forced BGK collide."""

    # force adds ~3 flops per direction on top of the 259-op baseline
    ops_per_update = 259 + 3 * N_DIRECTIONS

    def __init__(
        self,
        flags: np.ndarray,
        omega: float = 1.0,
        force: Sequence[float] = (0.0, 0.0, 0.0),
    ) -> None:
        super().__init__(flags, omega)
        if len(force) != 3:
            raise ValueError("force must be (Fz, Fy, Fx)")
        self.force = tuple(float(c) for c in force)

    def __repr__(self) -> str:
        return (
            f"ForcedLBMKernel(omega={self.omega}, force={self.force}, "
            f"shape={self.flags.shape})"
        )

    def padded_for(self, halo: int, shape):
        base = super().padded_for(halo, shape)
        if base is self:
            return self
        return ForcedLBMKernel(base.flags, omega=self.omega, force=self.force)

    def restricted_to(self, zlo: int, zhi: int) -> "ForcedLBMKernel":
        base = super().restricted_to(zlo, zhi)
        return ForcedLBMKernel(base.flags, omega=self.omega, force=self.force)

    def _collide(self, f_in: np.ndarray) -> np.ndarray:
        return collide_bgk_forced(f_in, self.omega, self.force)
