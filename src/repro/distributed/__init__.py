"""Distributed-memory layer: slab decomposition + simulated message passing,
with rank-failure tolerance (buddy checkpoints + elastic re-decomposition)."""

from ..resilience.rankrecovery import (
    RankDeadError,
    RecoveryReport,
    UnrecoverableRankFailureError,
)
from .comm import CommFailedError, CommRequest, CommStats, SimComm, transfer_time
from .decompose import Slab, decompose_z
from .runner import DistributedJacobi

__all__ = [
    "SimComm",
    "CommFailedError",
    "CommRequest",
    "CommStats",
    "RankDeadError",
    "RecoveryReport",
    "UnrecoverableRankFailureError",
    "transfer_time",
    "Slab",
    "decompose_z",
    "DistributedJacobi",
]
