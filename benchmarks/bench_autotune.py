"""Tuner cross-validation: analytic Equations 1/3/4 vs measurement-driven search.

The paper derives blocking parameters analytically; the auto-tuning school
it cites (Datta et al., Section II) searches with measurements.  This bench
runs both on the same kernels and machine and shows they land on the same
configuration knee — each validating the other.
"""

import numpy as np
import pytest

from repro.core import autotune_empirical, tune
from repro.machine import CORE_I7
from repro.perf import format_table
from repro.stencils import SevenPointStencil, TwentySevenPointStencil

from .conftest import banner, record


def test_analytic_vs_empirical_7pt(benchmark):
    kernel = SevenPointStencil()

    def search():
        return autotune_empirical(
            kernel,
            CORE_I7,
            np.float32,
            probe_shape=(10, 96, 96),
            dim_t_candidates=(1, 2, 3, 4),
            tile_candidates=(32, 48, 96),
        )

    results = benchmark.pedantic(search, rounds=1, iterations=1)
    analytic = tune(kernel, CORE_I7, np.float32, derated=False)
    rows = [
        (
            c.dim_t,
            c.tile,
            f"{c.bytes_per_update:.2f}",
            f"{c.predicted_time_per_update * 1e12:.2f} ps",
            "yes" if c.fits_capacity else "no",
        )
        for c in results[:6]
    ]
    print(banner("Empirical search (top candidates) — 7pt SP on Core i7"))
    print(format_table(["dim_T", "tile", "B/update", "time/update", "fits"], rows))
    print(f"\nanalytic tuner (Eq. 3/4): dim_T={analytic.params.dim_t}, "
          f"dim_X={analytic.params.dim_x}")
    best = results[0]
    assert abs(best.dim_t - analytic.params.dim_t) <= 1
    assert best.dim_t >= 2  # temporal blocking wins for the BW-bound kernel
    record(benchmark, best_dim_t=best.dim_t, best_tile=best.tile)


def test_analytic_vs_empirical_27pt(benchmark):
    """Compute-bound kernel: both tuners say 'no temporal blocking'."""
    kernel = TwentySevenPointStencil()

    def search():
        return autotune_empirical(
            kernel,
            CORE_I7,
            np.float32,
            probe_shape=(8, 64, 64),
            dim_t_candidates=(1, 2, 3),
            tile_candidates=(32, 64),
        )

    results = benchmark.pedantic(search, rounds=1, iterations=1)
    analytic = tune(kernel, CORE_I7, np.float32, derated=False)
    print(banner("27pt SP: both tuners reject temporal blocking"))
    print(f"analytic scheme: {analytic.scheme}")
    print(f"empirical best : dim_T={results[0].dim_t}, tile={results[0].tile}")
    assert analytic.scheme == "2.5d"
    assert results[0].dim_t == 1
    record(benchmark, best_dim_t=results[0].dim_t)


def test_empirical_search_cost(benchmark):
    """The search itself is cheap: one blocked round per candidate."""
    kernel = SevenPointStencil()
    results = benchmark(
        autotune_empirical,
        kernel,
        CORE_I7,
        np.float32,
        (8, 48, 48),
        (1, 2),
        (24, 48),
    )
    assert len(results) == 4
