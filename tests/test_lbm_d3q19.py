"""Unit tests for the D3Q19 velocity set, weights, and collision operator."""

import numpy as np
import pytest

from repro.lbm import (
    CS2,
    N_DIRECTIONS,
    OPPOSITE,
    VELOCITIES,
    WEIGHTS,
    collide_bgk,
    direction_index,
    equilibrium,
)


class TestVelocitySet:
    def test_19_directions(self):
        assert VELOCITIES.shape == (19, 3)
        assert len(set(map(tuple, VELOCITIES))) == 19

    def test_speeds(self):
        speeds = np.abs(VELOCITIES).sum(axis=1)
        assert (np.sort(speeds) == [0] + [1] * 6 + [2] * 12).all()

    def test_linf_radius_is_one(self):
        # the paper's R for LBM: L-infinity norm = 1
        assert np.abs(VELOCITIES).max() == 1

    def test_velocity_sum_zero(self):
        assert (VELOCITIES.sum(axis=0) == 0).all()

    def test_opposites(self):
        for i in range(N_DIRECTIONS):
            assert (VELOCITIES[OPPOSITE[i]] == -VELOCITIES[i]).all()
        assert (OPPOSITE[OPPOSITE] == np.arange(19)).all()

    def test_direction_index(self):
        assert direction_index(0, 0, 0) == 0
        i = direction_index(0, 1, -1)
        assert (VELOCITIES[i] == (0, 1, -1)).all()
        with pytest.raises(ValueError):
            direction_index(1, 1, 1)  # corners are not in D3Q19


class TestWeights:
    def test_sum_to_one(self):
        assert WEIGHTS.sum() == pytest.approx(1.0)

    def test_values(self):
        assert WEIGHTS[0] == pytest.approx(1 / 3)
        np.testing.assert_allclose(WEIGHTS[1:7], 1 / 18)
        np.testing.assert_allclose(WEIGHTS[7:], 1 / 36)

    def test_second_moment_isotropy(self):
        # sum_i w_i c_ia c_ib = cs^2 delta_ab — required for correct NS limit
        c = VELOCITIES.astype(float)
        m2 = np.einsum("i,ia,ib->ab", WEIGHTS, c, c)
        np.testing.assert_allclose(m2, CS2 * np.eye(3), atol=1e-14)


class TestEquilibrium:
    def test_moments_recovered(self):
        rng = np.random.default_rng(0)
        rho = 1.0 + 0.1 * rng.random((4, 5))
        u = 0.05 * (rng.random((3, 4, 5)) - 0.5)
        feq = equilibrium(rho, u)
        np.testing.assert_allclose(feq.sum(axis=0), rho, rtol=1e-12)
        mom = np.einsum("ia,i...->a...", VELOCITIES.astype(float), feq)
        np.testing.assert_allclose(mom, rho * u, rtol=1e-10, atol=1e-14)

    def test_rest_state_is_weights(self):
        feq = equilibrium(np.array(1.0), np.zeros(3))
        np.testing.assert_allclose(feq, WEIGHTS, rtol=1e-14)

    def test_dtype_respected(self):
        feq = equilibrium(
            np.ones((2, 2), dtype=np.float32), np.zeros((3, 2, 2), dtype=np.float32)
        )
        assert feq.dtype == np.float32


class TestCollision:
    def test_conserves_mass_and_momentum(self):
        rng = np.random.default_rng(1)
        f = 0.02 + rng.random((19, 6, 6)) * 0.05
        out = collide_bgk(f, omega=1.4)
        np.testing.assert_allclose(out.sum(axis=0), f.sum(axis=0), rtol=1e-12)
        c = VELOCITIES.astype(float)
        np.testing.assert_allclose(
            np.einsum("ia,i...->a...", c, out),
            np.einsum("ia,i...->a...", c, f),
            rtol=1e-10,
            atol=1e-14,
        )

    def test_equilibrium_is_fixed_point(self):
        rho = np.full((3, 3), 1.2)
        u = np.full((3, 3, 3), 0.03)
        feq = equilibrium(rho, u)
        out = collide_bgk(feq, omega=1.7)
        np.testing.assert_allclose(out, feq, rtol=1e-12)

    def test_omega_one_jumps_to_equilibrium(self):
        rng = np.random.default_rng(2)
        f = 0.02 + rng.random((19, 4)) * 0.05
        out = collide_bgk(f, omega=1.0)
        rho = f.sum(axis=0)
        u = np.einsum("ia,i...->a...", VELOCITIES.astype(float), f) / rho
        np.testing.assert_allclose(out, equilibrium(rho, u), rtol=1e-12)

    def test_relaxation_direction(self):
        """omega < 1 moves f toward (but not past) equilibrium."""
        rng = np.random.default_rng(3)
        f = 0.02 + rng.random((19, 1)) * 0.05
        rho = f.sum(axis=0)
        u = np.einsum("ia,i...->a...", VELOCITIES.astype(float), f) / rho
        feq = equilibrium(rho, u)
        out = collide_bgk(f, omega=0.5)
        assert (np.abs(out - feq) <= np.abs(f - feq) + 1e-15).all()


class TestShapeIndependence:
    """Regression: collide_bgk must be bitwise independent of batch shape.

    np.sum(axis=0) picks pairwise vs sequential reduction by trailing
    shape; that broke bit-exactness between blocking schedules computing
    different-sized regions of the same cells (found by hypothesis).
    """

    def test_single_cell_equals_batch(self):
        rng = np.random.default_rng(0)
        f = 0.02 + rng.random((19, 6, 6)) * 0.05
        full = collide_bgk(f, omega=1.0)
        for (y, x) in [(0, 0), (2, 3), (5, 5)]:
            cell = collide_bgk(f[:, y : y + 1, x : x + 1], omega=1.0)
            assert np.array_equal(full[:, y, x], cell[:, 0, 0])

    def test_column_split_equals_batch(self):
        rng = np.random.default_rng(1)
        f = 0.02 + rng.random((19, 4, 8)) * 0.05
        full = collide_bgk(f, omega=1.3)
        left = collide_bgk(f[:, :, :3], omega=1.3)
        right = collide_bgk(f[:, :, 3:], omega=1.3)
        assert np.array_equal(full, np.concatenate([left, right], axis=2))
