"""Additional coverage of the performance-model scheme paths."""

import pytest

from repro.perf import (
    predict_7pt_cpu,
    predict_7pt_gpu,
    predict_lbm_cpu,
    predict_lbm_gpu,
)


class Test7ptCpuExtraSchemes:
    def test_temporal_only_small_grid(self):
        """Whole-plane temporal blocking fits at 64^3 and helps."""
        e = predict_7pt_cpu("temporal", "sp", 64)
        # caveat: at 64^3 the naive run is already cache resident, so the
        # comparison that matters is vs the bandwidth-bound large grids
        assert e.mupdates_per_s > predict_7pt_cpu("none", "sp", 512).mupdates_per_s

    def test_temporal_only_large_grid_falls_back(self):
        e = predict_7pt_cpu("temporal", "sp", 512)
        assert "no benefit" in e.note
        assert e.mupdates_per_s == pytest.approx(
            predict_7pt_cpu("none", "sp", 512).mupdates_per_s
        )

    def test_4d_scheme_worse_than_35d(self):
        e4 = predict_7pt_cpu("4d", "sp", 256)
        e35 = predict_7pt_cpu("35d", "sp", 256)
        assert e4.mupdates_per_s < e35.mupdates_per_s
        assert "block side" in e4.note

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            predict_7pt_cpu("bogus", "sp", 256)
        with pytest.raises(ValueError):
            predict_lbm_cpu("bogus", "sp", 256)
        with pytest.raises(ValueError):
            predict_7pt_gpu("bogus", "sp")

    def test_note_and_retag_fields(self):
        e = predict_7pt_cpu("35d", "sp", 256)
        assert "dim_T=2" in e.note
        assert e.kernel == "7pt" and e.platform == "cpu"


class TestLbmCpuExtraSchemes:
    def test_spatial_equals_none(self):
        a = predict_lbm_cpu("none", "sp", 256)
        b = predict_lbm_cpu("spatial", "sp", 256)
        assert a.mupdates_per_s == pytest.approx(b.mupdates_per_s)

    def test_no_simd_matches_scalar_bar(self):
        e = predict_lbm_cpu("none", "sp", 256, use_simd=False)
        assert e.mupdates_per_s == pytest.approx(52, rel=0.1)
        assert not e.bandwidth_bound  # scalar code can't even saturate BW

    def test_ilp_flag_only_affects_blocked(self):
        base = predict_lbm_cpu("none", "sp", 256, ilp=False).mupdates_per_s
        with_ilp = predict_lbm_cpu("none", "sp", 256, ilp=True).mupdates_per_s
        assert base == pytest.approx(with_ilp)
        blocked = predict_lbm_cpu("35d", "sp", 256, ilp=False).mupdates_per_s
        blocked_ilp = predict_lbm_cpu("35d", "sp", 256, ilp=True).mupdates_per_s
        assert blocked_ilp > blocked


class TestGpuExtraSchemes:
    def test_gpu_4d_between_spatial_and_35d(self):
        sp = predict_7pt_gpu("spatial", "sp").mupdates_per_s
        d4 = predict_7pt_gpu("4d", "sp").mupdates_per_s
        d35 = predict_7pt_gpu("35d", "sp").mupdates_per_s
        assert d4 < d35
        assert d4 == pytest.approx(sp, rel=0.15)  # "only ~5%" apart

    def test_35d_without_ilp_matches_fig5b_bar4(self):
        e = predict_7pt_gpu("35d", "sp", ilp=False)
        assert e.mupdates_per_s == pytest.approx(13252, rel=0.1)

    def test_lbm_gpu_temporal_schemes_all_fall_back(self):
        base = predict_lbm_gpu("none", "sp").mupdates_per_s
        for scheme in ("temporal", "4d", "35d"):
            e = predict_lbm_gpu(scheme, "sp")
            assert e.mupdates_per_s == pytest.approx(base)
            assert "infeasible" in e.note

    def test_dp_gpu_naive_bandwidth_bound(self):
        e = predict_7pt_gpu("none", "dp")
        assert e.bandwidth_bound
