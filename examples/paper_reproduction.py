"""Regenerate every table and figure of the paper in one run.

Prints Table I, the Section IV kernel analysis, the Section V-A/VI blocking
parameters and overheads, the Figure 4 series, the Figure 5 breakdowns, and
the Section VII-D comparisons — each with the paper's reported values next
to this reproduction's.  (The pytest-benchmark harness under benchmarks/
asserts all of these with tolerances; this script is the human-readable
one-shot version.)

Run:  python examples/paper_reproduction.py
"""

from repro.gpu import plan_lbm_gpu
from repro.machine import CORE_I7, GTX_285
from repro.perf import (
    KERNELS,
    breakdown_7pt_gpu,
    breakdown_lbm_cpu,
    format_comparisons,
    format_stages,
    format_table,
    predict_7pt_cpu,
    predict_7pt_gpu,
    predict_lbm_cpu,
    section_viid_comparisons,
)


def section(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    section("Table I: peak BW (GB/s), peak Gops, bytes/op")
    rows = []
    for name, m in (("Core i7", CORE_I7), ("GTX 285", GTX_285)):
        rows.append((
            name, f"{m.peak_bandwidth / 1e9:.0f}",
            f"{m.peak_ops_sp / 1e9:.0f}", f"{m.peak_ops_dp / 1e9:.0f}",
            f"{m.bytes_per_op('sp'):.2f}", f"{m.bytes_per_op('dp'):.2f}",
        ))
    print(format_table(["platform", "BW", "SP Gops", "DP Gops", "B/op SP", "B/op DP"], rows))

    section("Section IV: kernel bytes/op (gamma)")
    rows = []
    for name, k in KERNELS.items():
        g = k.gamma if name == "lbm" else (lambda p, _k=k: _k.gamma_blocked(p))
        rows.append((name, k.ops_per_update, f"{g('sp'):.3f}", f"{g('dp'):.3f}"))
    print(format_table(["kernel", "ops/update", "gamma SP", "gamma DP"], rows))

    section("Figure 4(a): LBM on Core i7 (MLUPS, model vs paper anchors)")
    rows = []
    for p in ("sp", "dp"):
        for g in (64, 256, 512):
            es = [predict_lbm_cpu(s, p, g).mupdates_per_s for s in ("none", "temporal", "35d")]
            rows.append((f"{p.upper()} {g}^3", *(f"{e:.0f}" for e in es)))
    print(format_table(["case", "no blocking", "temporal only", "3.5D"], rows))
    print("paper anchors: SP naive 87, SP 3.5D 171-180, DP 3.5D ~80")

    section("Figure 4(b): 7-point stencil on Core i7 (MU/s)")
    rows = []
    for p in ("sp", "dp"):
        for g in (64, 256, 512):
            es = [predict_7pt_cpu(s, p, g).mupdates_per_s for s in ("none", "spatial", "35d")]
            rows.append((f"{p.upper()} {g}^3", *(f"{e:.0f}" for e in es)))
    print(format_table(["case", "no blocking", "spatial", "3.5D"], rows))
    print("paper anchors: SP 3.5D ~3900 (1.5X), DP 3.5D ~1995; small grids see no benefit")

    section("Figure 4(c): 7-point stencil on GTX 285 (MU/s)")
    rows = []
    for p in ("sp", "dp"):
        es = [predict_7pt_gpu(s, p).mupdates_per_s for s in ("none", "spatial", "35d")]
        rows.append((p.upper(), *(f"{e:.0f}" for e in es)))
    print(format_table(["precision", "no blocking", "spatial", "3.5D"], rows))
    print("paper anchors: SP 3300 / 9234 / 17100; DP compute bound at 4600 with spatial")

    section("Figure 5(a): LBM CPU optimization breakdown")
    print(format_stages(breakdown_lbm_cpu()))

    section("Figure 5(b): GPU 7-point optimization breakdown")
    print(format_stages(breakdown_7pt_gpu()))

    section("Section VI-B: LBM on GTX 285 feasibility")
    plan = plan_lbm_gpu("sp")
    print(f"SP: {plan.reason}")
    print(f"DP: {plan_lbm_gpu('dp').reason}")

    section("Section VII-D: comparisons with prior work")
    print(format_comparisons(section_viid_comparisons()))

    section("Roofline view (Core i7, SP): what 3.5D blocking does")
    from repro.perf.figures import roofline_chart

    points = {}
    for label, est, ops in [
        ("7pt naive (BW bound)", predict_7pt_cpu("none", "sp", 256), 16),
        ("7pt 3.5D (compute bound)", predict_7pt_cpu("35d", "sp", 256), 16),
        ("LBM naive (BW bound)", predict_lbm_cpu("none", "sp", 256), 259),
        ("LBM 3.5D (compute bound)", predict_lbm_cpu("35d", "sp", 256), 259),
    ]:
        points[label] = (est.bytes_per_update / ops, est.mupdates_per_s * 1e6 * ops)
    print(roofline_chart(CORE_I7, points))
    print("temporal blocking slides each kernel right along the intensity "
          "axis,\nout from under the bandwidth slope to the compute ceiling")


if __name__ == "__main__":
    main()
