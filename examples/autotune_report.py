"""Auto-tuning report: the Section VI decision table for every configuration.

Runs the tuner for both kernels on both platforms and both precisions,
printing dim_T / dim_X / kappa and the feasibility verdicts — the executable
form of the paper's Section VI.  Also shows the Section VIII projection:
what a machine with twice the compute (same bandwidth) would need.

Run:  python examples/autotune_report.py
"""

import numpy as np

from repro.core import tune
from repro.gpu import plan_7pt_gpu, plan_lbm_gpu
from repro.lbm import LBMKernel
from repro.machine import CORE_I7, scaled_machine
from repro.perf import format_table
from repro.stencils import SevenPointStencil, TwentySevenPointStencil


def main() -> None:
    seven = SevenPointStencil()
    twenty7 = TwentySevenPointStencil()
    lbm = LBMKernel(np.zeros((4, 4, 4), dtype=np.uint8))

    rows = []
    for name, kernel in (("7pt", seven), ("27pt", twenty7), ("lbm", lbm)):
        for dtype, prec in ((np.float32, "SP"), (np.float64, "DP")):
            t = tune(kernel, CORE_I7, dtype, derated=False)
            if t.scheme == "3.5d":
                cfg = f"dim_T={t.params.dim_t}, dim_X={t.params.dim_x}, kappa={t.params.kappa:.3f}"
            elif t.scheme == "2.5d":
                cfg = f"dim_X={t.params.dim_x} (spatial only)"
            else:
                cfg = "no blocking"
            rows.append((f"{name} {prec}", t.scheme, f"{t.gamma:.2f}", f"{t.big_gamma:.2f}", cfg))
    print(format_table(
        ["kernel", "scheme", "gamma", "Gamma", "configuration"],
        rows, "Core i7 tuning (Section VI)",
    ))

    print("\nGTX 285 plans:")
    for prec in ("sp", "dp"):
        p = plan_7pt_gpu(prec)
        verdict = (
            f"dim_T={p.dim_t}, dim_X={p.dim_x}, kappa={p.kappa:.2f}, "
            f"occupancy={p.occupancy.occupancy:.2f}"
            if p.uses_temporal_blocking
            else p.reason
        )
        print(f"  7pt {prec.upper():2s}: {verdict}")
    for prec in ("sp", "dp"):
        p = plan_lbm_gpu(prec)
        print(f"  lbm {prec.upper():2s}: {p.reason if not p.feasible else 'feasible'}")

    print("\nSection VIII projection (2X compute, same bandwidth):")
    future = scaled_machine(CORE_I7, compute_scale=2.0, name="future CPU")
    for name, kernel in (("7pt", seven), ("lbm", lbm)):
        t = tune(kernel, future, np.float32, derated=False)
        print(
            f"  {name} SP: dim_T={t.params.dim_t} "
            f"(vs {tune(kernel, CORE_I7, np.float32, derated=False).params.dim_t} today), "
            f"kappa={t.params.kappa:.3f}"
        )


if __name__ == "__main__":
    main()
