"""Distributed temporal blocking: fewer, larger halo exchanges.

Slab-decomposes a 7-point heat problem across 4 simulated ranks and compares
the communication profile of the classic exchange-every-step scheme against
halo exchanges of width R*dim_T every dim_T steps.  Byte volume is identical;
message count — and hence the latency term of the alpha-beta cost — drops by
dim_T.  Results are bit-identical to the serial naive solver either way.

Run:  python examples/distributed_stencil.py
"""

import numpy as np

from repro.core import run_naive
from repro.distributed import DistributedJacobi, transfer_time
from repro.stencils import Field3D, SevenPointStencil


def main() -> None:
    kernel = SevenPointStencil(alpha=1 - 6 * 0.125, beta=0.125)
    field = Field3D.random((64, 32, 32), dtype=np.float32, seed=0)
    steps, ranks = 12, 4
    reference = run_naive(kernel, field, steps)

    print("Distributed 3.5D blocking (4 simulated ranks, 64x32x32, 12 steps)")
    print(f"{'dim_T':>6} {'messages':>9} {'volume MB':>10} {'alpha-beta cost':>16}")
    for dim_t in (1, 2, 3, 4):
        dj = DistributedJacobi(kernel, ranks, dim_t=dim_t)
        out, comm = dj.run(field, steps)
        assert np.array_equal(out.data, reference.data)
        total = comm.total_stats()
        cost = transfer_time(total.messages_sent, total.bytes_sent)
        print(
            f"{dim_t:>6} {total.messages_sent:>9} "
            f"{total.bytes_sent / 1e6:>10.2f} {cost * 1e6:>13.1f} us"
        )
    print("all runs bit-identical to the serial naive solver")
    print("volume is dim_T-independent; message count falls as 1/dim_T")


if __name__ == "__main__":
    main()
