"""Plan-level codegen: compile whole 3.5D sweeps to cached parallel kernels.

The fused engines of :mod:`repro.perf.fused` hoist Python dispatch out of the
*z-iteration*; this module hoists it out of the *entire sweep round*.  A
whole round's prebound instruction plan — the tile loop, every ring-buffer
plane rotation, the boundary-strip seam writes and all ``dim_T``
z-iterations — is lowered into **one generated kernel** whose outer loop
runs ``prange`` over tiles, so a rank needs neither the Python
:class:`~repro.runtime.threadpool.WorkerPool` nor any per-step interpreter
work once the plan is bound.  This is the AN5D / DaCe dataflow-lowering
idiom (PAPERS.md): generate the full tiled sweep, compile once, replay.

Layout of the layer:

``generate_sweep_source(kind, parallel)``
    Emits the Python source of the whole-sweep kernel for one stencil kind
    (``7pt`` / ``27pt`` / ``taps`` / ``varco``).  The generated code is
    *geometry-generic*: tile extents, schedule steps, region clips and strip
    widths arrive as int64 arrays at call time, so one compiled kernel
    serves every grid size, tile shape and ``round_t`` — which is what lets
    a warm disk cache mean zero JIT cost for *new* plans too.  The scalar
    loop bodies mirror the proven bit-exact fused-numba kernels line for
    line (same operand association, same shell substitution, same strip
    refresh), so results are bit-identical to every other backend.
``CodegenCache``
    On-disk store of generated modules under
    ``$REPRO_CODEGEN_CACHE`` (default ``$XDG_CACHE_HOME/repro/codegen``),
    in a per-:func:`~repro.core.autotune.machine_fingerprint` subdirectory
    keyed by the plan hash.  Modules are real ``.py`` files imported via
    :mod:`importlib` so ``numba.njit(cache=True)`` persists its compiled
    artifacts next to them; a toolchain upgrade changes the fingerprint and
    strands (rather than silently loads) stale artifacts.  Corrupt entries
    are quarantined to ``*.corrupt`` and regenerated, mirroring
    :class:`~repro.core.autotune.TuningCache`.
``CodegenSweepKernel``
    The backend adapter.  Extends :class:`~repro.perf.fused.FusedSweepKernel`
    with a ``sweep_runner`` hook the executors probe; kernels or layouts the
    generator does not support fall through to the inherited fused-numpy
    instruction plan, and environments without numba either refuse to bind
    (default) or run the generated source interpreted
    (``REPRO_CODEGEN_MODE=python`` — bit-identical, slow, used for tests).
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import os
import sys
from pathlib import Path

import numpy as np

from ..core.buffer import ring_slots
from ..core.regions import compute_range
from ..core.schedule import StepKind
from ..resilience.faultinject import FAULTS
from ..stencils.generic import GenericStencil
from ..stencils.seven_point import SevenPointStencil
from ..stencils.twentyseven_point import TwentySevenPointStencil
from ..stencils.variable import VariableCoefficientStencil
from .fused import _CORNERS, _EDGES, _FACES, FusedSweepKernel

__all__ = [
    "CODEGEN_CACHE_ENV",
    "CODEGEN_MODE_ENV",
    "CODEGEN_STATS",
    "CODEGEN_VERSION",
    "CodegenCache",
    "CodegenStats",
    "CodegenSweepKernel",
    "codegen_available",
    "codegen_cache_dir",
    "codegen_mode",
    "generate_sweep_source",
    "plan_hash",
]

#: bumping this invalidates every cached generated module
CODEGEN_VERSION = 1

#: environment variable overriding the compiled-kernel cache directory
CODEGEN_CACHE_ENV = "REPRO_CODEGEN_CACHE"

#: ``numba`` (default: require numba, njit the generated sweep) or
#: ``python`` (run the generated source interpreted — bit-identical, slow;
#: lets degraded environments and the test suite exercise the full layer)
CODEGEN_MODE_ENV = "REPRO_CODEGEN_MODE"


def codegen_mode() -> str:
    """The active compile mode: ``"numba"`` (default) or ``"python"``."""
    mode = os.environ.get(CODEGEN_MODE_ENV, "numba").strip().lower()
    return mode if mode in ("numba", "python") else "numba"


def codegen_cache_dir() -> Path:
    """Root of the on-disk compiled-kernel cache.

    ``$REPRO_CODEGEN_CACHE`` if set, else ``$XDG_CACHE_HOME/repro/codegen``
    (default ``~/.cache/repro/codegen``).  This path is part of the
    :func:`~repro.core.autotune.machine_fingerprint`, so pointing two runs
    at different caches also separates their tuning entries.
    """
    path = os.environ.get(CODEGEN_CACHE_ENV)
    if path is None:
        base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
            os.path.expanduser("~"), ".cache"
        )
        path = os.path.join(base, "repro", "codegen")
    return Path(path)


def codegen_available() -> tuple[bool, str | None]:
    """Whether the codegen backend can bind in this environment."""
    if codegen_mode() == "python":
        return True, None
    try:
        import numba  # noqa: F401
    except Exception as exc:
        return False, (
            f"numba not importable: {exc}; install it with "
            "`pip install numba` (or `pip install 'repro[numba]'`), or set "
            f"{CODEGEN_MODE_ENV}=python for the interpreted fallback"
        )
    return True, None


class CodegenStats:
    """Process-wide counters over the generated-kernel cache.

    ``generated`` counts modules written to disk (a cold plan), ``loaded``
    counts binds served from an existing on-disk module (a warm start —
    zero source generation and, under numba's own disk cache, zero JIT),
    ``quarantined`` counts corrupt entries moved aside.
    """

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.generated = 0
        self.loaded = 0
        self.quarantined = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "generated": self.generated,
            "loaded": self.loaded,
            "quarantined": self.quarantined,
        }


CODEGEN_STATS = CodegenStats()


# ======================================================================
# source generation
# ======================================================================

_HEADER = "# repro-codegen v{version}\n# kind={kind} parallel={parallel}\n"

_PROLOG = '''\
"""Generated 3.5D whole-sweep kernel (repro.perf.codegen; do not edit).

One call executes a full blocked round: the outer loop runs over tiles
(``prange`` when compiled with ``parallel=True``), and per tile the flat
``meta`` plan replays every schedule step of every z-iteration — loads,
ring-plane computes with boundary-strip refresh, and store seam writes.
"""
try:
    from numba import njit, prange
except ImportError:  # degraded environment: interpreted fallback only
    njit = None
    prange = range


def sweep_py(src3, dst3, rings, shell, geom, meta, counts,
             taps_off, taps_w, coef_a, coef_b, alpha, beta,
             nz, slots, ntiles):
'''

_EPILOG = """

if njit is None:
    sweep_jit = None
else:
    sweep_jit = njit(parallel={parallel}, cache=True)(sweep_py)
"""

# per-tile prolog + the load step, shared by every stencil kind
_TILE_PROLOG = """\
    for ti in prange(ntiles):
        ey0 = geom[ti, 0]
        ex0 = geom[ti, 1]
        enx = geom[ti, 3]
        trings = rings[ti]
        tshell = shell[ti]
        sy_lo = geom[ti, 4]
        sy_hi = geom[ti, 5]
        sx_lo = geom[ti, 6]
        sx_hi = geom[ti, 7]
        for i in range(counts[ti]):
            kind_c = meta[ti, i, 0]
            t = meta[ti, i, 1]
            z = meta[ti, i, 2]
            ly0 = meta[ti, i, 3]
            ly1 = meta[ti, i, 4]
            lx0 = meta[ti, i, 5]
            lx1 = meta[ti, i, 6]
            if kind_c == 0:  # load
                out = trings[0, z % slots]
                for y in range(ly0, ly1):
                    for x in range(enx):
                        out[y, x] = src3[z, ey0 + y, ex0 + x]
                continue
"""

# boundary strips: constant in time, refreshed from the t-1 plane
_STRIPS = """\
            sy0 = meta[ti, i, 7]
            sy1 = meta[ti, i, 8]
            for y in range(sy0, min(sy_lo, sy1)):
                for x in range(enx):
                    out[y, x] = mid[y, x]
            for y in range(max(sy_hi, sy0), sy1):
                for x in range(enx):
                    out[y, x] = mid[y, x]
            for y in range(sy0, sy1):
                for x in range(sx_lo):
                    out[y, x] = mid[y, x]
                for x in range(enx - sx_hi, enx):
                    out[y, x] = mid[y, x]
"""

# shell substitution for the z-pair planes of the radius-1 direct kinds
_Z_PAIR = """\
            if z - 1 < r:
                below = tshell[z - 1]
            elif z - 1 >= nz - r:
                below = tshell[r + (z - 1) - (nz - r)]
            else:
                below = trings[t - 1, (z - 1) % slots]
            mid = trings[t - 1, z % slots]
            if z + 1 >= nz - r:
                above = tshell[r + (z + 1) - (nz - r)]
            else:
                above = trings[t - 1, (z + 1) % slots]
"""

_BODY_7PT = _Z_PAIR + """\
            if kind_c == 2:  # store
                if ly0 < ly1:
                    for y in range(ly0, ly1):
                        for x in range(lx0, lx1):
                            acc = (
                                (below[y, x] + above[y, x])
                                + (mid[y - 1, x] + mid[y + 1, x])
                            ) + (mid[y, x - 1] + mid[y, x + 1])
                            dst3[z, ey0 + y, ex0 + x] = (
                                alpha * mid[y, x] + beta * acc
                            )
                continue
            out = trings[t, z % slots]
            if ly0 < ly1:
                for y in range(ly0, ly1):
                    for x in range(lx0, lx1):
                        acc = (
                            (below[y, x] + above[y, x])
                            + (mid[y - 1, x] + mid[y + 1, x])
                        ) + (mid[y, x - 1] + mid[y, x + 1])
                        out[y, x] = alpha * mid[y, x] + beta * acc
"""

_BODY_VARCO = _Z_PAIR + """\
            store = kind_c == 2
            if ly0 < ly1:
                for y in range(ly0, ly1):
                    for x in range(lx0, lx1):
                        acc = below[y, x] + above[y, x]
                        acc += mid[y - 1, x]
                        acc += mid[y + 1, x]
                        acc += mid[y, x - 1]
                        acc += mid[y, x + 1]
                        v = (
                            coef_a[z, ey0 + y, ex0 + x] * mid[y, x]
                            + coef_b[z, ey0 + y, ex0 + x] * acc
                        )
                        if store:
                            dst3[z, ey0 + y, ex0 + x] = v
                        else:
                            trings[t, z % slots, y, x] = v
            if store:
                continue
            out = trings[t, z % slots]
"""

_BODY_TAPS = """\
            mid = trings[t - 1, z % slots]
            store = kind_c == 2
            if ly0 < ly1:
                for y in range(ly0, ly1):
                    for x in range(lx0, lx1):
                        # accumulate taps in the reference's sorted order,
                        # reading each source plane through the same shell
                        # substitution as the executor
                        zz = z + taps_off[0, 0]
                        yy = y + taps_off[0, 1]
                        xx = x + taps_off[0, 2]
                        if zz < r:
                            v = tshell[zz, yy, xx]
                        elif zz >= nz - r:
                            v = tshell[r + zz - (nz - r), yy, xx]
                        else:
                            v = trings[t - 1, zz % slots, yy, xx]
                        acc = taps_w[0] * v
                        for j in range(1, ntaps):
                            zz = z + taps_off[j, 0]
                            yy = y + taps_off[j, 1]
                            xx = x + taps_off[j, 2]
                            if zz < r:
                                v = tshell[zz, yy, xx]
                            elif zz >= nz - r:
                                v = tshell[r + zz - (nz - r), yy, xx]
                            else:
                                v = trings[t - 1, zz % slots, yy, xx]
                            acc += taps_w[j] * v
                        if store:
                            dst3[z, ey0 + y, ex0 + x] = acc
                        else:
                            trings[t, z % slots, y, x] = acc
            if store:
                continue
            out = trings[t, z % slots]
"""

_BODY_27PT = _Z_PAIR + """\
            store = kind_c == 2
            if ly0 < ly1:
                for y in range(ly0, ly1):
                    for x in range(lx0, lx1):
                        # group sums start from their first offset and
                        # accumulate in the reference generation order
                        sface = below[y + taps_off[0, 1], x + taps_off[0, 2]]
                        for j in range(1, 6):
                            dz = taps_off[j, 0]
                            yy = y + taps_off[j, 1]
                            xx = x + taps_off[j, 2]
                            if dz < 0:
                                sface += below[yy, xx]
                            elif dz > 0:
                                sface += above[yy, xx]
                            else:
                                sface += mid[yy, xx]
                        dz = taps_off[6, 0]
                        yy = y + taps_off[6, 1]
                        xx = x + taps_off[6, 2]
                        if dz < 0:
                            sedge = below[yy, xx]
                        elif dz > 0:
                            sedge = above[yy, xx]
                        else:
                            sedge = mid[yy, xx]
                        for j in range(7, 18):
                            dz = taps_off[j, 0]
                            yy = y + taps_off[j, 1]
                            xx = x + taps_off[j, 2]
                            if dz < 0:
                                sedge += below[yy, xx]
                            elif dz > 0:
                                sedge += above[yy, xx]
                            else:
                                sedge += mid[yy, xx]
                        dz = taps_off[18, 0]
                        yy = y + taps_off[18, 1]
                        xx = x + taps_off[18, 2]
                        if dz < 0:
                            scorner = below[yy, xx]
                        else:
                            scorner = above[yy, xx]
                        for j in range(19, 26):
                            dz = taps_off[j, 0]
                            yy = y + taps_off[j, 1]
                            xx = x + taps_off[j, 2]
                            if dz < 0:
                                scorner += below[yy, xx]
                            else:
                                scorner += above[yy, xx]
                        v = wcenter * mid[y, x]
                        v += wface * sface
                        v += wedge * sedge
                        v += wcorner * scorner
                        if store:
                            dst3[z, ey0 + y, ex0 + x] = v
                        else:
                            trings[t, z % slots, y, x] = v
            if store:
                continue
            out = trings[t, z % slots]
"""

_KIND_SETUP = {
    "7pt": "    r = 1\n",
    "27pt": (
        "    r = 1\n"
        "    wcenter = taps_w[0]\n"
        "    wface = taps_w[1]\n"
        "    wedge = taps_w[2]\n"
        "    wcorner = taps_w[3]\n"
    ),
    "taps": (
        "    r = shell.shape[1] // 2\n"
        "    ntaps = taps_off.shape[0]\n"
    ),
    "varco": "    r = 1\n",
}

_KIND_BODY = {
    "7pt": _BODY_7PT,
    "27pt": _BODY_27PT,
    "taps": _BODY_TAPS,
    "varco": _BODY_VARCO,
}


def generate_sweep_source(kind: str, parallel: bool) -> str:
    """The whole-sweep kernel source for ``kind`` (header excluded)."""
    body = _KIND_BODY.get(kind)
    if body is None:
        raise ValueError(
            f"unknown codegen kind {kind!r}; supported: {sorted(_KIND_BODY)}"
        )
    return (
        _PROLOG
        + _KIND_SETUP[kind]
        + _TILE_PROLOG
        + body
        + _STRIPS
        + _EPILOG.format(parallel=bool(parallel))
    )


def plan_hash(kind: str, parallel: bool) -> str:
    """Content hash of one plan's code-determining signature.

    The generated kernels are geometry-generic — tile extents, schedule
    steps and strip widths are runtime data — so the hash covers exactly
    what determines the generated code: the codegen version, the stencil
    kind, the tile-parallelism flag and the generated source itself.
    """
    source = generate_sweep_source(kind, parallel)
    blob = json.dumps(
        {
            "version": CODEGEN_VERSION,
            "kind": kind,
            "parallel": bool(parallel),
            "source": hashlib.sha256(source.encode()).hexdigest(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


# ======================================================================
# on-disk module cache
# ======================================================================

#: imported generated modules, keyed by (resolved path, payload digest) so a
#: rewritten or corrupted file can never be served stale from memory
_MODULE_CACHE: dict[tuple[str, str], object] = {}
_MODULE_SEQ = 0


def clear_module_cache() -> None:
    """Drop in-process imports of generated modules (tests: simulate a
    fresh process so warm-start behavior is observable)."""
    _MODULE_CACHE.clear()


class CodegenCache:
    """On-disk store of generated sweep modules.

    Layout::

        <root>/<machine_fingerprint>/sweep_<kind>_<par|ser>_<planhash>.py

    The fingerprint directory (same fingerprint as the
    :class:`~repro.core.autotune.TuningCache`) isolates artifacts per
    toolchain: upgrading python/numpy/numba lands in a fresh directory, so
    stale compiled artifacts are stranded instead of silently loaded.
    ``numba.njit(cache=True)`` stores its compiled machine code in a
    ``__pycache__`` next to each module, which is what makes a warm start
    pay zero JIT cost.  Entries that fail validation or import are renamed
    to ``*.corrupt`` and regenerated.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = Path(root) if root is not None else codegen_cache_dir()

    # ------------------------------------------------------------------
    def dir(self) -> Path:
        """The per-toolchain subdirectory entries live in."""
        from ..core.autotune import machine_fingerprint

        return self.root / machine_fingerprint()

    def path_for(self, kind: str, parallel: bool) -> Path:
        tag = "par" if parallel else "ser"
        return self.dir() / f"sweep_{kind}_{tag}_{plan_hash(kind, parallel)}.py"

    def entries(self) -> list[Path]:
        """Cached module files for the current toolchain fingerprint."""
        try:
            return sorted(self.dir().glob("sweep_*.py"))
        except OSError:
            return []

    def clear(self) -> None:
        for path in self.entries():
            try:
                path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    def module_for(self, kind: str, parallel: bool):
        """The imported generated module for ``(kind, parallel)``.

        Loads the on-disk entry when present and valid (a *warm start*:
        no source generation, and numba's own disk cache supplies the
        machine code); otherwise generates, persists and imports a fresh
        module.  Corrupt entries — content that does not match the header
        digest, or files that fail to import — are quarantined to
        ``*.corrupt`` and regenerated.
        """
        path = self.path_for(kind, parallel)
        source = generate_sweep_source(kind, parallel)
        text = self._expected_text(kind, parallel, source)
        if path.exists():
            try:
                on_disk = path.read_text(encoding="utf-8")
            except OSError:
                on_disk = None
            if on_disk == text:
                try:
                    mod = self._import(path, text)
                except Exception:
                    self._quarantine(path)
                else:
                    CODEGEN_STATS.loaded += 1
                    return mod
            else:
                self._quarantine(path)
        self._write(path, text)
        CODEGEN_STATS.generated += 1
        return self._import(path, text)

    # ------------------------------------------------------------------
    @staticmethod
    def _expected_text(kind: str, parallel: bool, source: str) -> str:
        header = _HEADER.format(
            version=CODEGEN_VERSION, kind=kind, parallel=bool(parallel)
        )
        digest = hashlib.sha256(source.encode()).hexdigest()
        return f"{header}# sha256={digest}\n{source}"

    @staticmethod
    def _write(path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    @staticmethod
    def _quarantine(path: Path) -> None:
        corrupt = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, corrupt)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        CODEGEN_STATS.quarantined += 1

    @staticmethod
    def _import(path: Path, text: str):
        global _MODULE_SEQ
        key = (str(path.resolve()), hashlib.sha256(text.encode()).hexdigest())
        mod = _MODULE_CACHE.get(key)
        if mod is not None:
            return mod
        _MODULE_SEQ += 1
        name = f"repro_codegen_{path.stem}_{_MODULE_SEQ}"
        spec = importlib.util.spec_from_file_location(name, path)
        if spec is None or spec.loader is None:  # pragma: no cover
            raise ImportError(f"cannot load generated module {path}")
        mod = importlib.util.module_from_spec(spec)
        # registered so numba's caching layer can resolve the module
        sys.modules[name] = mod
        spec.loader.exec_module(mod)
        _MODULE_CACHE[key] = mod
        return mod


# ======================================================================
# the backend adapter + whole-sweep runner
# ======================================================================


class CodegenSweepKernel(FusedSweepKernel):
    """Codegen engine: one generated call per blocked round.

    Inside the 3.5D executors the ``sweep_runner`` hook replaces the whole
    Python tile loop with one generated-kernel call (``prange`` over tiles
    under the parallel executor).  Kernels or layouts the generator cannot
    lower — multi-component fields, non-contiguous buffers, mixed-precision
    variable coefficients, custom kernels — fall through to the inherited
    fused-numpy instruction plan, so ``--backend codegen`` stays universal.
    """

    engine = "codegen"

    # ------------------------------------------------------------------
    def sweep_runner(self, executor, src, dst, round_t, parallel=False):
        """The (cached) whole-round runner, or ``None`` when unsupported.

        Runners prebind the complete plan — tiles, schedule meta, stacked
        ring/shell storage and the compiled sweep function — and are cached
        by identity of the executor and ping/pong buffer pairing.
        """
        FAULTS.fire("backend.compute", detail="codegen")
        cache = self.__dict__.setdefault("_sweep_runners", [])
        for runner in cache:
            if (
                runner.executor is executor
                and runner.src_data is src.data
                and runner.dst_data is dst.data
                and runner.round_t == round_t
                and runner.parallel == parallel
            ):
                return runner
        runner = _CodegenSweepRunner.build(
            self, executor, src, dst, round_t, parallel
        )
        if runner is not None:
            cache.append(runner)
            # ping/pong plus one spare pair (mirrors the fused runner cache)
            del cache[:-4]
        return runner

    def __getstate__(self):
        # bound runners hold imported modules and live buffer views; they
        # rebind cheaply, so keep kernel pickling (checkpoints) working
        state = dict(self.__dict__)
        state.pop("_sweep_runners", None)
        return state


class _CodegenSweepRunner:
    """One generated call per blocked round over stacked per-tile storage."""

    @classmethod
    def build(cls, kernel, executor, src, dst, round_t, parallel):
        inner = kernel.inner
        if src.data.shape[0] != 1 or not src.data.flags.c_contiguous:
            return None
        if not dst.data.flags.c_contiguous:
            return None
        if type(inner) is SevenPointStencil:
            kind = "7pt"
        elif type(inner) is TwentySevenPointStencil:
            kind = "27pt"
        elif type(inner) is GenericStencil:
            kind = "taps"
        elif type(inner) is VariableCoefficientStencil:
            # mixed-precision coefficient fields follow NumPy promotion in
            # the reference; only same-dtype fields are bit-safe to lower
            if inner.alpha.dtype != src.data.dtype:
                return None
            kind = "varco"
        else:
            return None
        mode = codegen_mode()
        if mode != "python":
            ok, _ = codegen_available()
            if not ok:
                return None
        try:
            module = CodegenCache().module_for(kind, parallel)
        except OSError:
            return None  # unwritable cache: the fused tile path still works
        fn = module.sweep_py if mode == "python" else module.sweep_jit
        if fn is None:
            return None
        return cls(kernel, executor, src, dst, round_t, parallel, kind, fn)

    def __init__(self, kernel, executor, src, dst, round_t, parallel, kind, fn):
        self.kernel = kernel
        self.executor = executor
        self.src_data = src.data
        self.dst_data = dst.data
        self.round_t = round_t
        self.parallel = parallel
        self.kind = kind
        self.fn = fn
        self.ops_per_update = kernel.ops_per_update
        inner = kernel.inner
        r = kernel.radius
        self.radius = r
        self.nz, self.ny, self.nx = src.shape
        nz, ny, nx = self.nz, self.ny, self.nx
        dtype = src.data.dtype
        esize = kernel.element_size(dtype)
        self.slots = ring_slots(r, executor.concurrent)
        self.tiles = executor._plan_tiles(ny, nx, round_t)
        schedule = executor._get_schedule(nz, round_t)
        iters = schedule.iterations()
        steps = [
            (s.kind, s.t, s.z) for k in sorted(iters) for s in iters[k]
        ]
        ntiles = len(self.tiles)
        self.ntiles = ntiles

        # --- per-tile geometry + flattened schedule meta ----------------
        geom = np.zeros((ntiles, 8), dtype=np.int64)
        metas: list[list[tuple[int, ...]]] = []
        rb = rp = wb = wp = pts = 0
        max_eny = max_enx = 1
        for ti, tile in enumerate(self.tiles):
            (ey0, ey1), (ex0, ex1) = tile.y.extent, tile.x.extent
            eny, enx = ey1 - ey0, ex1 - ex0
            max_eny, max_enx = max(max_eny, eny), max(max_enx, enx)
            # boundary-strip geometry (mirrors Blocking35D._fill_xy_strips)
            sy_lo = r - ey0 if ey0 < r else 0
            sy_hi = (ny - r) - ey0 if ey1 > ny - r else eny
            sx_lo = r - ex0 if ex0 < r else 0
            sx_hi = ex1 - (nx - r) if ex1 > nx - r else 0
            geom[ti] = (ey0, ex0, eny, enx, sy_lo, sy_hi, sx_lo, sx_hi)
            regions = {
                t: (
                    compute_range(tile.y.core, ny, r, round_t, t),
                    compute_range(tile.x.core, nx, r, round_t, t),
                )
                for t in range(1, round_t + 1)
            }
            rows: list[tuple[int, ...]] = []
            for skind, t, z in steps:
                if skind is StepKind.LOAD:
                    if z < r or z >= nz - r:
                        continue  # shell plane: resident after sync
                    rows.append((0, 0, z, 0, eny, 0, enx, 0, eny))
                    rb += eny * enx * esize
                    rp += 1
                    continue
                (gy0, gy1), (gx0, gx1) = regions[t]
                a0, a1 = gy0 - ey0, gy1 - ey0
                lx0, lx1 = gx0 - ex0, gx1 - ex0
                code = 2 if skind is StepKind.STORE else 1
                if code == 2 and a0 >= a1:
                    continue
                rows.append((code, t, z, a0, max(a0, a1), lx0, lx1, 0, eny))
                if a0 < a1:
                    npts = (a1 - a0) * (lx1 - lx0)
                    pts += npts
                    if code == 2:
                        wb += npts * esize
                        wp += 1
            metas.append(rows)
            # the constant Z shell is re-read once per plane per tile per
            # round on a capacity-limited machine (see _load_shell_planes)
            rb += 2 * r * eny * enx * esize
            rp += 2 * r
        self.geom = geom
        max_steps = max(len(rows) for rows in metas)
        self.meta = np.zeros((ntiles, max_steps, 9), dtype=np.int64)
        self.counts = np.zeros(ntiles, dtype=np.int64)
        for ti, rows in enumerate(metas):
            self.counts[ti] = len(rows)
            if rows:
                self.meta[ti, : len(rows)] = rows
        self._traffic = (rb, rp, wb, wp, pts)

        # --- dedicated stacked storage the generated kernel indexes -----
        self.rings = np.zeros(
            (ntiles, round_t, self.slots, max_eny, max_enx), dtype=dtype
        )
        self.shell = np.zeros((ntiles, 2 * r, max_eny, max_enx), dtype=dtype)
        self._shell_token = None
        self.src3 = src.data[0]
        self.dst3 = dst.data[0]

        # --- stencil constants (same bindings as the fused-numba runner) -
        scalar = dtype.type
        self.alpha = scalar(0)
        self.beta = scalar(0)
        self.taps_off = np.zeros((0, 3), dtype=np.int64)
        self.taps_w = np.zeros(0, dtype=dtype)
        z3 = np.zeros((0, 0, 0), dtype=dtype)
        self.coef_a = self.coef_b = z3
        if kind == "7pt":
            self.alpha = scalar(inner.alpha)
            self.beta = scalar(inner.beta)
        elif kind == "27pt":
            order = list(_FACES) + list(_EDGES) + list(_CORNERS)
            self.taps_off = np.array(order, dtype=np.int64)
            self.taps_w = np.array(
                [inner.center, inner.face, inner.edge, inner.corner],
                dtype=dtype,
            )
        elif kind == "taps":
            self.taps_off = np.array(inner._order, dtype=np.int64)
            self.taps_w = np.array(
                [inner.taps[o] for o in inner._order], dtype=dtype
            )
        else:  # varco
            self.coef_a = np.ascontiguousarray(inner.alpha, dtype=dtype)
            self.coef_b = np.ascontiguousarray(inner.beta, dtype=dtype)

    # ------------------------------------------------------------------
    def _sync_shell(self) -> None:
        """(Re)copy every tile's constant shell planes into stacked storage."""
        r = self.radius
        nz = self.nz
        for ti in range(self.ntiles):
            ey0, ex0, eny, enx = self.geom_row(ti)
            for z in list(range(r)) + list(range(nz - r, nz)):
                idx = z if z < r else r + z - (nz - r)
                self.shell[ti, idx, :eny, :enx] = self.src3[
                    z, ey0 : ey0 + eny, ex0 : ex0 + enx
                ]

    def geom_row(self, ti: int) -> tuple[int, int, int, int]:
        g = self.geom[ti]
        return int(g[0]), int(g[1]), int(g[2]), int(g[3])

    # ------------------------------------------------------------------
    def run(self, shell_token=None, traffic=None) -> None:
        """Execute one full blocked round and record aggregate traffic."""
        if shell_token is None or self._shell_token is not shell_token:
            self._sync_shell()
            self._shell_token = shell_token
        self.fn(
            self.src3, self.dst3, self.rings, self.shell, self.geom,
            self.meta, self.counts, self.taps_off, self.taps_w,
            self.coef_a, self.coef_b, self.alpha, self.beta,
            self.nz, self.slots, self.ntiles,
        )
        if traffic is not None:
            rb, rp, wb, wp, pts = self._traffic
            if rb or rp:
                traffic.read(rb, planes=rp)
            if wb or wp:
                traffic.write(wb, planes=wp)
            if pts:
                traffic.update(pts, self.ops_per_update)
