"""Trapezoid region arithmetic for space-time blocking.

When ``dim_T`` time steps are executed on a tile held in on-chip memory, the
region with correct values shrinks by the stencil radius R per time step away
from every *cut* edge (an edge interior to the grid).  Edges that coincide
with the physical grid boundary do not shrink, because the boundary shell is
held constant in time (Section V-C: "z0 ... does not change with time").

This module provides the per-axis interval arithmetic used by every temporal
executor: the loaded extent of a tile, the computable region at each
intermediate time instance, and the decomposition of the grid interior into
tile cores (the ``dim - 2·R·dim_T`` valid regions of Equation 2).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AxisTile", "axis_tiles", "compute_range", "loaded_extent", "Tile2D", "plan_tiles_2d"]


@dataclass(frozen=True)
class AxisTile:
    """One tile along a single axis.

    ``core`` is the half-open range of final outputs this tile owns;
    ``extent`` is the half-open range of source data it loads (core plus a
    halo of ``radius * dim_t``, clipped to the axis).
    """

    core: tuple[int, int]
    extent: tuple[int, int]

    @property
    def core_size(self) -> int:
        return self.core[1] - self.core[0]

    @property
    def extent_size(self) -> int:
        return self.extent[1] - self.extent[0]


def loaded_extent(core: tuple[int, int], n: int, halo: int) -> tuple[int, int]:
    """Source extent needed for a tile core after ``halo`` total shrink steps."""
    return (max(0, core[0] - halo), min(n, core[1] + halo))


def compute_range(
    core: tuple[int, int],
    n: int,
    radius: int,
    dim_t: int,
    t: int,
) -> tuple[int, int]:
    """Computable range along one axis at time instance ``t`` (1-based).

    At ``t = dim_t`` this is exactly the core; at earlier instances it is the
    core expanded by ``radius * (dim_t - t)``, clamped to the grid interior
    ``[radius, n - radius)``.  The clamp encodes the no-shrink-at-boundary
    property: intermediate values adjacent to the physical boundary are exact
    because the boundary is constant in time.
    """
    if not 1 <= t <= dim_t:
        raise ValueError(f"time instance {t} outside [1, {dim_t}]")
    grow = radius * (dim_t - t)
    lo = max(radius, core[0] - grow)
    hi = min(n - radius, core[1] + grow)
    return (lo, hi)


def axis_tiles(n: int, radius: int, dim_t: int, tile: int) -> list[AxisTile]:
    """Decompose the interior ``[R, n-R)`` of one axis into tile cores.

    ``tile`` is the on-chip blocking dimension (the paper's ``dim_X``); the
    usable core per tile is ``tile - 2·R·dim_T`` (Equation 2's numerator),
    except that cores touching the physical boundary need no halo on that
    side and may extend their loaded extent less.

    Raises ``ValueError`` when ``tile`` is too small to make progress.
    """
    halo = radius * dim_t
    core_size = tile - 2 * halo
    interior = (radius, n - radius)
    if interior[0] >= interior[1]:
        raise ValueError(f"axis of size {n} has no interior for radius {radius}")
    if tile >= n:
        # The whole axis fits on chip: a single boundary-to-boundary tile
        # with no cut edges and hence no ghost cells at all.
        return [AxisTile(core=interior, extent=(0, n))]
    if core_size < 1:
        raise ValueError(
            f"tile {tile} cannot host 2*R*dim_T = {2 * halo} ghost cells"
        )
    tiles: list[AxisTile] = []
    lo = interior[0]
    while lo < interior[1]:
        hi = min(lo + core_size, interior[1])
        core = (lo, hi)
        tiles.append(AxisTile(core=core, extent=loaded_extent(core, n, halo)))
        lo = hi
    return tiles


@dataclass(frozen=True)
class Tile2D:
    """An XY tile: the cross product of one Y axis tile and one X axis tile."""

    y: AxisTile
    x: AxisTile

    @property
    def core_points(self) -> int:
        return self.y.core_size * self.x.core_size

    @property
    def extent_points(self) -> int:
        return self.y.extent_size * self.x.extent_size


def plan_tiles_2d(
    ny: int,
    nx: int,
    radius: int,
    dim_t: int,
    tile_y: int,
    tile_x: int,
) -> list[Tile2D]:
    """All XY tiles covering the grid interior, in row-major order."""
    return [
        Tile2D(y=ty, x=tx)
        for ty in axis_tiles(ny, radius, dim_t, tile_y)
        for tx in axis_tiles(nx, radius, dim_t, tile_x)
    ]
