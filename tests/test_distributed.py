"""Tests for the distributed (simulated-MPI) layer."""

import numpy as np
import pytest

from repro.core import run_naive
from repro.distributed import (
    DistributedJacobi,
    SimComm,
    decompose_z,
    transfer_time,
)
from repro.stencils import (
    Field3D,
    SevenPointStencil,
    VariableCoefficientStencil,
    star_stencil,
)


class TestSimComm:
    def test_send_recv_roundtrip(self):
        comm = SimComm(2)
        payload = np.arange(6.0).reshape(2, 3)
        comm.send(0, 1, tag=7, array=payload)
        out = comm.recv(0, 1, tag=7)
        assert np.array_equal(out, payload)
        assert comm.stats[0].bytes_sent == payload.nbytes
        assert comm.stats[1].bytes_received == payload.nbytes

    def test_send_copies_payload(self):
        comm = SimComm(2)
        payload = np.zeros(4)
        comm.send(0, 1, 0, payload)
        payload[:] = 99  # mutation after send must not leak (MPI semantics)
        assert not comm.recv(0, 1, 0).any()

    def test_fifo_per_channel(self):
        comm = SimComm(2)
        comm.send(0, 1, 0, np.array([1.0]))
        comm.send(0, 1, 0, np.array([2.0]))
        assert comm.recv(0, 1, 0)[0] == 1.0
        assert comm.recv(0, 1, 0)[0] == 2.0

    def test_missing_message_raises(self):
        comm = SimComm(2)
        with pytest.raises(LookupError):
            comm.recv(0, 1, 0)

    def test_rank_validation(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.send(0, 5, 0, np.zeros(1))
        with pytest.raises(ValueError):
            SimComm(0)

    def test_sendrecv(self):
        comm = SimComm(3)
        # ring shift: every rank sends right, receives from left
        for r in range(3):
            comm.send(r, (r + 1) % 3, 0, np.array([float(r)]))
        for r in range(3):
            got = comm.recv((r - 1) % 3, r, 0)
            assert got[0] == (r - 1) % 3
        assert comm.pending() == 0

    def test_transfer_time_model(self):
        few_big = transfer_time(messages=2, nbytes=1 << 20)
        many_small = transfer_time(messages=20, nbytes=1 << 20)
        assert few_big < many_small  # same volume, fewer messages wins


class TestDecompose:
    def test_partition_covers_axis(self):
        slabs = decompose_z(30, 4, halo=2)
        assert slabs[0].z0 == 0 and slabs[-1].z1 == 30
        for a, b in zip(slabs, slabs[1:]):
            assert a.z1 == b.z0

    def test_neighbors(self):
        slabs = decompose_z(30, 3, halo=2)
        assert slabs[0].lo_neighbor is None
        assert slabs[0].hi_neighbor == 1
        assert slabs[1].lo_neighbor == 0 and slabs[1].hi_neighbor == 2
        assert slabs[2].hi_neighbor is None

    def test_too_thin_slabs_rejected(self):
        with pytest.raises(ValueError, match="fewer ranks"):
            decompose_z(10, 5, halo=3)

    def test_single_rank(self):
        (slab,) = decompose_z(10, 1, halo=3)
        assert (slab.z0, slab.z1) == (0, 10)
        assert slab.lo_neighbor is None and slab.hi_neighbor is None


class TestDistributedCorrectness:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 5])
    @pytest.mark.parametrize("scheme,dim_t", [("naive", 1), ("35d", 2), ("35d", 3)])
    def test_matches_serial_naive(self, n_ranks, scheme, dim_t):
        k = SevenPointStencil()
        f = Field3D.random((24, 12, 14), seed=n_ranks * 10 + dim_t)
        ref = run_naive(k, f, 6)
        out, comm = DistributedJacobi(k, n_ranks, dim_t=dim_t, scheme=scheme).run(f, 6)
        assert np.array_equal(out.data, ref.data)
        assert comm.pending() == 0

    def test_remainder_steps(self):
        k = SevenPointStencil()
        f = Field3D.random((20, 10, 10), seed=3)
        ref = run_naive(k, f, 7)
        out, _ = DistributedJacobi(k, 3, dim_t=3).run(f, 7)
        assert np.array_equal(out.data, ref.data)

    def test_radius2(self):
        k = star_stencil(2, center=0.3, arm=0.02)
        f = Field3D.random((24, 12, 12), seed=4)
        ref = run_naive(k, f, 4)
        out, _ = DistributedJacobi(k, 2, dim_t=2).run(f, 4)
        assert np.array_equal(out.data, ref.data)

    def test_lbm_with_obstacles(self):
        from repro.lbm import Lattice, channel_with_sphere, make_kernel, run_lbm

        flags = channel_with_sphere((16, 12, 14), 2.0)
        rng = np.random.default_rng(5)
        lat = Lattice.from_moments(
            1.0 + 0.05 * rng.random((16, 12, 14)),
            0.02 * (rng.random((3, 16, 12, 14)) - 0.5),
            flags,
        )
        kernel = make_kernel(lat, omega=1.3)
        ref = run_lbm(lat, 4, omega=1.3)
        out, _ = DistributedJacobi(kernel, 3, dim_t=2).run(lat.f, 4)
        assert np.array_equal(out.data, ref.f.data)

    def test_variable_coefficients(self):
        k = VariableCoefficientStencil.layered((18, 10, 10), [0.2, 1.0, 0.6])
        f = Field3D.random((18, 10, 10), seed=6)
        ref = run_naive(k, f, 4)
        out, _ = DistributedJacobi(k, 3, dim_t=2).run(f, 4)
        assert np.array_equal(out.data, ref.data)

    def test_too_many_ranks_rejected(self):
        k = SevenPointStencil()
        f = Field3D.random((8, 8, 8), seed=7)
        with pytest.raises(ValueError):
            DistributedJacobi(k, 6, dim_t=3).run(f, 3)


class TestCommunicationAccounting:
    def test_message_count_reduced_by_dim_t(self):
        """Temporal blocking sends 1/dim_T as many messages."""
        k = SevenPointStencil()
        f = Field3D.random((24, 10, 10), seed=8)
        _, comm1 = DistributedJacobi(k, 4, dim_t=1).run(f, 6)
        _, comm3 = DistributedJacobi(k, 4, dim_t=3).run(f, 6)
        m1 = comm1.total_stats().messages_sent
        m3 = comm3.total_stats().messages_sent
        assert m1 == 3 * m3

    def test_volume_independent_of_dim_t(self):
        k = SevenPointStencil()
        f = Field3D.random((24, 10, 10), seed=9)
        _, comm1 = DistributedJacobi(k, 4, dim_t=1).run(f, 6)
        _, comm3 = DistributedJacobi(k, 4, dim_t=3).run(f, 6)
        assert comm1.total_stats().bytes_sent == comm3.total_stats().bytes_sent

    def test_expected_counters_match(self):
        k = SevenPointStencil()
        f = Field3D.random((24, 10, 10), seed=10)
        dj = DistributedJacobi(k, 3, dim_t=2)
        _, comm = dj.run(f, 6)
        total = comm.total_stats()
        assert total.messages_sent == dj.expected_messages(f.nz, 6)
        assert total.bytes_sent == dj.expected_bytes(f, 6)

    def test_edge_ranks_send_less(self):
        k = SevenPointStencil()
        f = Field3D.random((24, 10, 10), seed=11)
        _, comm = DistributedJacobi(k, 4, dim_t=2).run(f, 4)
        sent = [s.messages_sent for s in comm.stats]
        assert sent[0] == sent[-1]
        assert sent[1] == sent[2] == 2 * sent[0]  # interior ranks: two neighbors


class TestLossyTransport:
    """The ack/retry protocol: imperfect links, bit-perfect delivery."""

    def test_forced_drop_is_retransmitted(self):
        from repro.resilience.faultinject import FAULTS

        comm = SimComm(2, max_retries=3)
        payload = np.arange(5.0)
        with FAULTS.injected("comm.drop"):
            comm.send(0, 1, 0, payload)
            out = comm.recv(0, 1, 0)
        assert np.array_equal(out, payload)
        assert comm.stats[0].dropped == 1
        assert comm.stats[1].retries == 1

    def test_corruption_caught_by_checksum(self):
        from repro.resilience.faultinject import FAULTS

        comm = SimComm(2, max_retries=3)
        payload = np.arange(5.0)
        with FAULTS.injected("comm.corrupt"):
            comm.send(0, 1, 0, payload)
            out = comm.recv(0, 1, 0)
        assert np.array_equal(out, payload)  # the retransmission, bit-exact
        assert comm.stats[0].corrupted == 1
        assert comm.stats[1].retries == 1

    def test_persistent_loss_exhausts_retries(self):
        from repro.distributed import CommFailedError
        from repro.resilience.faultinject import FAULTS

        comm = SimComm(2, max_retries=2)
        with FAULTS.injected("comm.drop:*"):
            comm.send(0, 1, 0, np.arange(3.0))
            with pytest.raises(CommFailedError, match="undeliverable"):
                comm.recv(0, 1, 0)
        FAULTS.disarm()

    def test_random_loss_is_seed_deterministic(self):
        def total_retries(seed):
            comm = SimComm(2, loss=0.4, seed=seed, max_retries=16)
            for i in range(10):
                comm.send(0, 1, i, np.arange(4.0))
                comm.recv(0, 1, i)
            return comm.total_stats().retries

        assert total_retries(3) == total_retries(3)
        assert total_retries(3) > 0

    def test_invalid_transport_config_rejected(self):
        with pytest.raises(ValueError):
            SimComm(2, loss=1.5)
        with pytest.raises(ValueError):
            SimComm(2, max_retries=-1)

    def test_lossy_halo_exchange_stays_bit_exact(self):
        """A 30%-lossy link changes the stats, never the physics."""
        k = SevenPointStencil()
        f = Field3D.random((24, 10, 10), seed=12)
        lossy = DistributedJacobi(
            k, 3, dim_t=2, loss=0.3, corruption=0.1, comm_seed=5,
            max_retries=32,
        )
        out, comm = lossy.run(f, 6)
        assert np.array_equal(out.data, run_naive(k, f, 6).data)
        total = comm.total_stats()
        assert total.retries > 0
        assert total.dropped + total.corrupted > 0
