"""A simulated message-passing communicator (the mpi4py stand-in).

The paper's temporal-blocking lineage extends to distributed memory
(Wittmann, Hager & Wellein, cited in Section II): blocking ``dim_T`` steps
per halo exchange trades message *frequency* for ghost-zone width.  No MPI
runtime is available here, so this module provides a deterministic
in-process communicator with the mpi4py buffer-protocol flavor —
``send``/``recv`` of NumPy arrays by (source, dest, tag) — plus the
accounting a performance study needs: per-rank message and byte counters
and a latency/bandwidth cost model.

Ranks execute sequentially inside the driver (a valid schedule of the real
parallel execution); all sends of a phase complete before the matching
receives, like buffered MPI sends.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

__all__ = ["CommStats", "SimComm", "transfer_time"]


@dataclass
class CommStats:
    """Per-rank communication counters."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    def merge(self, other: "CommStats") -> None:
        self.messages_sent += other.messages_sent
        self.messages_received += other.messages_received
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received


class SimComm:
    """An in-process communicator for ``size`` ranks."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self._mail: dict[tuple[int, int, int], deque[np.ndarray]] = {}
        self.stats = [CommStats() for _ in range(size)]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside [0, {self.size})")

    def send(self, src: int, dst: int, tag: int, array: np.ndarray) -> None:
        """Buffered send: the payload is copied at send time (MPI semantics)."""
        self._check_rank(src)
        self._check_rank(dst)
        payload = np.ascontiguousarray(array).copy()
        self._mail.setdefault((src, dst, tag), deque()).append(payload)
        self.stats[src].messages_sent += 1
        self.stats[src].bytes_sent += payload.nbytes

    def recv(self, src: int, dst: int, tag: int) -> np.ndarray:
        """Receive the oldest matching message; raises if none is pending."""
        self._check_rank(src)
        self._check_rank(dst)
        box = self._mail.get((src, dst, tag))
        if not box:
            raise LookupError(
                f"no message from rank {src} to rank {dst} with tag {tag}"
            )
        payload = box.popleft()
        self.stats[dst].messages_received += 1
        self.stats[dst].bytes_received += payload.nbytes
        return payload

    def sendrecv(
        self,
        rank: int,
        dest: int,
        send_array: np.ndarray,
        source: int,
        tag: int,
    ) -> np.ndarray:
        """Exchange with two partners, the halo-exchange primitive."""
        self.send(rank, dest, tag, send_array)
        return self.recv(source, rank, tag)

    def pending(self) -> int:
        """Messages sent but not yet received (0 after a clean exchange)."""
        return sum(len(q) for q in self._mail.values())

    def total_stats(self) -> CommStats:
        total = CommStats()
        for s in self.stats:
            total.merge(s)
        return total


def transfer_time(
    messages: int,
    nbytes: int,
    latency_s: float = 1e-6,
    bandwidth_bytes_s: float = 10e9,
) -> float:
    """Alpha-beta communication cost: messages*latency + bytes/bandwidth.

    Temporal blocking keeps the byte term constant (the same planes cross
    per simulated time step) while dividing the latency term by ``dim_T``.
    """
    return messages * latency_s + nbytes / bandwidth_bytes_s
