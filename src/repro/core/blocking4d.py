"""4D blocking: 3D spatial tiles + 1D temporal trapezoids.

This is the comparison scheme of Sections V and VII ("a 4D (3D spatial +
temporal) blocking would have resulted in a computation overhead of 1.18X for
SP...", Section VI-A): because the ghost halo ``R * dim_T`` must be paid in
*three* dimensions and the 3D block side is only the cube root of the cache
capacity, the overestimation is far larger than 3.5D blocking's.  The paper
shows 4D blocking improves LBM by only ~8% where 3.5D gives ~2X (Figure 5a).
"""

from __future__ import annotations

from ..obs.trace import TRACE
from ..stencils.base import PlaneKernel, ScratchArena
from ..stencils.grid import Field3D, copy_shell
from .regions import axis_tiles
from .temporal import advance_tile_trapezoid
from .traffic import TrafficStats

__all__ = ["Blocking4D", "run_4d"]


class Blocking4D:
    """4D blocking executor: trapezoidal space-time tiles."""

    def __init__(
        self,
        kernel: PlaneKernel,
        dim_t: int,
        tile_z: int,
        tile_y: int,
        tile_x: int,
    ) -> None:
        if dim_t < 1:
            raise ValueError("dim_t must be >= 1")
        self.kernel = kernel
        self.dim_t = dim_t
        self.tile_z = tile_z
        self.tile_y = tile_y
        self.tile_x = tile_x
        self.scratch = ScratchArena()

    def clear_cache(self) -> None:
        """Drop the trapezoid scratch buffers."""
        self.scratch.clear()

    def run(
        self,
        field: Field3D,
        steps: int,
        traffic: TrafficStats | None = None,
    ) -> Field3D:
        if steps < 0:
            raise ValueError("steps must be >= 0")
        if steps == 0:
            return field.copy()
        src = field.copy()
        dst = field.like()
        copy_shell(src, dst, self.kernel.radius)
        with TRACE.span("sweep", executor="blocking4d", steps=steps,
                        dim_t=self.dim_t):
            remaining = steps
            round_index = 0
            while remaining > 0:
                round_t = min(self.dim_t, remaining)
                with TRACE.span("round", index=round_index, round_t=round_t):
                    self.sweep_round(src, dst, round_t, traffic)
                src, dst = dst, src
                remaining -= round_t
                round_index += 1
        return src

    def sweep_round(
        self,
        src: Field3D,
        dst: Field3D,
        round_t: int,
        traffic: TrafficStats | None = None,
    ) -> None:
        """One round of ``round_t`` time steps over all space-time tiles."""
        r = self.kernel.radius
        nz, ny, nx = src.shape
        if traffic is not None:
            traffic.notes.setdefault("dim_t", self.dim_t)
            traffic.notes.setdefault("round_t", []).append(round_t)
        armed = TRACE.armed
        for tz in axis_tiles(nz, r, round_t, self.tile_z):
            for ty in axis_tiles(ny, r, round_t, self.tile_y):
                for tx in axis_tiles(nx, r, round_t, self.tile_x):
                    if armed:
                        with TRACE.span("tile", z0=tz.core[0], y0=ty.core[0],
                                        x0=tx.core[0]):
                            advance_tile_trapezoid(
                                self.kernel, src, dst,
                                (tz.core, ty.core, tx.core),
                                round_t, traffic, scratch=self.scratch,
                            )
                    else:
                        advance_tile_trapezoid(
                            self.kernel, src, dst,
                            (tz.core, ty.core, tx.core),
                            round_t, traffic, scratch=self.scratch,
                        )


def run_4d(
    kernel: PlaneKernel,
    field: Field3D,
    steps: int,
    dim_t: int,
    tile_z: int,
    tile_y: int,
    tile_x: int,
    *,
    traffic: TrafficStats | None = None,
) -> Field3D:
    """Convenience wrapper for :class:`Blocking4D`."""
    return Blocking4D(kernel, dim_t, tile_z, tile_y, tile_x).run(
        field, steps, traffic
    )
