"""Kernel performance characteristics (paper Section IV).

Per-update operation counts and external-memory traffic for the three
kernels the paper analyzes, in both precisions and under each traffic
regime:

===========  ====  ======  ==========================================
kernel       ops   flops   bytes/update after spatial blocking
===========  ====  ======  ==========================================
7-point       16     8     2 values  (8 B SP / 16 B DP) -> γ 0.5 / 1.0
27-point      58    30     2 values  -> γ 0.14 / 0.28
D3Q19 LBM    259   220     SP 228 B unblocked (76 read + 152 write,
                           no streaming stores possible), 156 B with
                           blocking (one read + one write + flag)
===========  ====  ======  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelModel", "SEVEN_POINT", "TWENTY_SEVEN_POINT", "LBM_D3Q19", "KERNELS"]


def _esize(precision: str) -> int:
    return 4 if precision == "sp" else 8


@dataclass(frozen=True)
class KernelModel:
    """Analytical cost model of one kernel."""

    name: str
    ops_per_update: int
    flops_per_update: int
    #: scalar values per grid point (1 for stencils, 19+flag for LBM)
    values_per_point: int
    #: values read per update from external memory, after spatial blocking
    read_values: float
    #: values written per update
    write_values: float
    #: extra written values when streaming stores are impossible (LBM's
    #: unaligned neighbor writes double the store traffic: 152 B vs 76 B SP)
    write_values_no_streaming: float
    radius: int = 1

    def element_size(self, precision: str) -> int:
        return self.values_per_point * _esize(precision)

    def bytes_ideal(self, precision: str) -> float:
        """Compulsory bytes/update with perfect blocking (1 read + 1 write)."""
        return (self.read_values + self.write_values) * _esize(precision)

    def bytes_unblocked(self, precision: str, streaming_stores: bool) -> float:
        """Bytes/update of a full sweep with no temporal reuse."""
        writes = (
            self.write_values if streaming_stores else self.write_values_no_streaming
        )
        return (self.read_values + writes) * _esize(precision)

    def gamma(self, precision: str, streaming_stores: bool = False) -> float:
        """The paper's kernel bytes/op γ (Section IV uses unblocked traffic)."""
        return self.bytes_unblocked(precision, streaming_stores) / self.ops_per_update

    def gamma_blocked(self, precision: str) -> float:
        """bytes/op after spatial blocking (what Equation 3 compares to Γ)."""
        return self.bytes_ideal(precision) / self.ops_per_update


#: Section IV-A1: 2 mul + 6 add + 7 load + 1 store; spatially blocked traffic
#: 1 read of A + 1 write of B.
SEVEN_POINT = KernelModel(
    name="7pt",
    ops_per_update=16,
    flops_per_update=8,
    values_per_point=1,
    read_values=1,
    write_values=1,
    write_values_no_streaming=2,  # RFO doubles write traffic without NT stores
)

#: Section IV-A2: 4 mul + 26 add + 27 load + 1 store.
TWENTY_SEVEN_POINT = KernelModel(
    name="27pt",
    ops_per_update=58,
    flops_per_update=30,
    values_per_point=1,
    read_values=1,
    write_values=1,
    write_values_no_streaming=2,
)

#: Section IV-B: 220 flops + 20 reads + 19 writes; 19 reads + flag in, 19
#: values out, but SoA neighbor writes cannot use streaming stores, so the
#: written bytes double (152 B SP): 228 B total -> γ = 0.88 SP / 1.75 DP.
LBM_D3Q19 = KernelModel(
    name="lbm",
    ops_per_update=259,
    flops_per_update=220,
    values_per_point=20,  # 19 distributions + flag (E = 80 B SP / 160 B DP)
    read_values=19,  # the flag read rides along ("76-80 bytes"); use 76
    write_values=19,
    write_values_no_streaming=38,
)

KERNELS = {k.name: k for k in (SEVEN_POINT, TWENTY_SEVEN_POINT, LBM_D3Q19)}
