"""CPU parallel runtime: software barriers, worker pool, threaded 3.5D."""

from .barrier import (
    BarrierBrokenError,
    BarrierTimeoutError,
    PthreadsBarrier,
    SenseReversingBarrier,
)
from .parallel35d import ParallelBlocking35D, run_parallel_3_5d
from .partition import partition_balance, partition_rows, partition_span
from .threadpool import WorkerPool, WorkerTimeoutError

__all__ = [
    "SenseReversingBarrier",
    "PthreadsBarrier",
    "BarrierBrokenError",
    "BarrierTimeoutError",
    "WorkerPool",
    "WorkerTimeoutError",
    "partition_rows",
    "partition_span",
    "partition_balance",
    "ParallelBlocking35D",
    "run_parallel_3_5d",
]
