"""Tests for plan-level codegen: whole-sweep generated kernels.

The ``codegen`` backend (:mod:`repro.perf.codegen`) lowers an entire 3.5D
round — tile loop, ring-buffer plane rotation, seam writes, all dim_T
z-iterations — into one generated kernel, disk-cached per machine
fingerprint + plan hash.  The generated code must be *bit-identical* to the
fused/naive paths for every supported stencil kind, on every executor, and
the cache must answer warm starts with zero regeneration while corrupt
entries are quarantined and rebuilt.

The suite pins ``REPRO_CODEGEN_MODE=python`` so the generated source runs
interpreted — the container has no numba — which exercises the identical
generated text the JIT would compile.
"""

import os

import numpy as np
import pytest

from repro.core import Blocking35D, TrafficStats, run_naive
from repro.core.autotune import machine_fingerprint
from repro.perf.backends import (
    backend_availability,
    bound_rung,
    get_backend,
    wrap_kernel,
)
from repro.perf.codegen import (
    CODEGEN_CACHE_ENV,
    CODEGEN_MODE_ENV,
    CODEGEN_STATS,
    CodegenCache,
    CodegenSweepKernel,
    clear_module_cache,
    codegen_available,
    codegen_mode,
    generate_sweep_source,
    plan_hash,
)
from repro.resilience import bind_with_fallback
from repro.runtime import ParallelBlocking35D
from repro.stencils import (
    Field3D,
    GenericStencil,
    SevenPointStencil,
    TwentySevenPointStencil,
    VariableCoefficientStencil,
)

from .conftest import assert_fields_equal

_NUMBA = get_backend("numba").available


@pytest.fixture(autouse=True)
def _codegen_env(tmp_path, monkeypatch):
    """Interpreted mode + per-test cache dir; fresh stats every test."""
    monkeypatch.setenv(CODEGEN_MODE_ENV, "python")
    monkeypatch.setenv(CODEGEN_CACHE_ENV, str(tmp_path / "cgcache"))
    clear_module_cache()
    CODEGEN_STATS.reset()
    yield
    clear_module_cache()
    CODEGEN_STATS.reset()


def _generic_r1():
    taps = {(0, 0, 0): np.float32(-6.0)}
    for dz, dy, dx in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0),
                       (0, 0, 1), (0, 0, -1)):
        taps[(dz, dy, dx)] = np.float32(1.0 + 0.01 * (dz + dy + dx))
    return GenericStencil(taps)


def _varco(shape, dtype=np.float32):
    rng = np.random.default_rng(7)
    return VariableCoefficientStencil(
        alpha=(0.8 + 0.4 * rng.random(shape)).astype(dtype),
        beta=(0.05 + 0.02 * rng.random(shape)).astype(dtype),
    )


def _kernels(shape):
    return {
        "7pt": SevenPointStencil(),
        "27pt": TwentySevenPointStencil(),
        "generic-r1": _generic_r1(),
        "varco": _varco(shape),
    }


class TestAvailability:
    def test_registered_with_dynamic_probe(self):
        b = get_backend("codegen")
        assert b.probe is not None
        ok, reason = backend_availability("codegen")
        assert ok and reason is None  # python mode forced by the fixture

    def test_python_mode_is_always_available(self):
        assert codegen_mode() == "python"
        assert codegen_available() == (True, None)

    @pytest.mark.skipif(_NUMBA, reason="numba installed: codegen is available")
    def test_numba_mode_unavailable_reason_is_actionable(self, monkeypatch):
        monkeypatch.delenv(CODEGEN_MODE_ENV, raising=False)
        ok, reason = codegen_available()
        assert not ok
        assert "pip install numba" in reason
        assert "REPRO_CODEGEN_MODE=python" in reason

    @pytest.mark.skipif(_NUMBA, reason="numba installed: codegen is available")
    def test_fallback_on_missing_numba(self, monkeypatch):
        from repro.resilience import DegradedExecutionWarning

        monkeypatch.delenv(CODEGEN_MODE_ENV, raising=False)
        with pytest.warns(DegradedExecutionWarning):
            bound = bind_with_fallback(SevenPointStencil(), "codegen")
        assert bound.used == "fused-numpy"
        assert bound.degraded
        assert bound.degradations[0].backend == "codegen"

    def test_wrap_preserves_kernel_contract(self):
        wrapped = wrap_kernel(SevenPointStencil(), "codegen")
        assert isinstance(wrapped, CodegenSweepKernel)
        assert wrapped.radius == 1
        assert bound_rung(wrapped) == "codegen"


class TestBitExactness:
    @pytest.mark.parametrize("name", ["7pt", "27pt", "generic-r1", "varco"])
    def test_serial_matches_naive(self, name):
        shape = (10, 20, 20)
        kernel = _kernels(shape)[name]
        field = Field3D.random(shape, dtype=np.float32, seed=3)
        wrapped = wrap_kernel(kernel, "codegen")
        for dim_t, tile in ((1, 20), (2, 12), (3, 10)):
            out = Blocking35D(wrapped, dim_t, tile, tile).run(field, 5)
            assert_fields_equal(out, run_naive(kernel, field, 5))

    @pytest.mark.parametrize("name", ["7pt", "27pt", "generic-r1", "varco"])
    def test_matches_fused_numpy_bitwise(self, name):
        shape = (9, 17, 19)
        kernel = _kernels(shape)[name]
        field = Field3D.random(shape, dtype=np.float32, seed=8)
        out_cg = Blocking35D(
            wrap_kernel(kernel, "codegen"), 2, 6, 8).run(field, 4)
        out_fn = Blocking35D(
            wrap_kernel(kernel, "fused-numpy"), 2, 6, 8).run(field, 4)
        assert_fields_equal(out_cg, out_fn)

    def test_non_dividing_tiles_seam_path(self):
        """Tile shapes that don't divide the plane exercise seam writes."""
        kernel = SevenPointStencil()
        field = Field3D.random((8, 19, 23), dtype=np.float32, seed=9)
        wrapped = wrap_kernel(kernel, "codegen")
        out = Blocking35D(wrapped, 2, 7, 5).run(field, 4)
        assert_fields_equal(out, run_naive(kernel, field, 4))

    def test_partial_final_round(self):
        kernel = SevenPointStencil()
        field = Field3D.random((10, 20, 20), dtype=np.float32, seed=10)
        out = Blocking35D(wrap_kernel(kernel, "codegen"), 3, 8, 8).run(field, 7)
        assert_fields_equal(out, run_naive(kernel, field, 7))

    @pytest.mark.parametrize("threads", [1, 3])
    @pytest.mark.parametrize("name", ["7pt", "27pt", "generic-r1", "varco"])
    def test_parallel_matches_naive(self, threads, name):
        shape = (9, 18, 18)
        kernel = _kernels(shape)[name]
        field = Field3D.random(shape, dtype=np.float32, seed=4)
        wrapped = wrap_kernel(kernel, "codegen")
        out = ParallelBlocking35D(wrapped, 2, 12, 12, threads).run(field, 5)
        assert_fields_equal(out, run_naive(kernel, field, 5))

    def test_double_precision(self):
        field = Field3D.random((8, 16, 16), dtype=np.float64, seed=5)
        wrapped = wrap_kernel(SevenPointStencil(), "codegen")
        out = Blocking35D(wrapped, 2, 12, 12).run(field, 4)
        assert_fields_equal(out, run_naive(SevenPointStencil(), field, 4))

    def test_multicomponent_falls_through_to_fused(self):
        """ncomp > 1 kernels (LBM) run on the inherited fused path."""
        from repro.lbm import LBMKernel, Lattice

        shape = (8, 10, 10)
        rng = np.random.default_rng(0)
        lat = Lattice.from_moments(
            (1.0 + 0.02 * rng.random(shape)).astype(np.float32),
            (0.01 * (rng.random((3,) + shape) - 0.5)).astype(np.float32),
        )
        kernel = LBMKernel(lat.flags, omega=1.2)
        wrapped = wrap_kernel(kernel, "codegen")
        ex = Blocking35D(wrapped, 2, 8, 8)
        out = ex.run(lat.f, 4)
        assert_fields_equal(out, run_naive(kernel, lat.f, 4))
        # no whole-sweep runner was built for a multicomponent kernel
        assert wrapped.sweep_runner(ex, lat.f, lat.f.like(), 2) is None

    def test_traffic_parity_with_fused_numpy(self):
        """Codegen changes execution, not the external-traffic accounting."""
        kernel = SevenPointStencil()
        field = Field3D.random((10, 24, 24), dtype=np.float32, seed=1)
        t_cg, t_fn = TrafficStats(), TrafficStats()
        Blocking35D(wrap_kernel(kernel, "codegen"), 2, 16, 16).run(
            field, 4, t_cg)
        Blocking35D(wrap_kernel(kernel, "fused-numpy"), 2, 16, 16).run(
            field, 4, t_fn)
        assert t_cg.bytes_read == t_fn.bytes_read
        assert t_cg.bytes_written == t_fn.bytes_written
        assert t_cg.plane_loads == t_fn.plane_loads
        assert t_cg.plane_stores == t_fn.plane_stores
        assert t_cg.updates == t_fn.updates
        assert t_cg.ops == t_fn.ops

    def test_guarded_sweep_and_trace_paths(self):
        from repro.obs import TRACE
        from repro.resilience import GuardedSweep

        kernel = SevenPointStencil()
        field = Field3D.random((8, 16, 16), dtype=np.float32, seed=13)
        ref = run_naive(kernel, field, 4)
        wrapped = wrap_kernel(kernel, "codegen")
        guard = GuardedSweep(Blocking35D(wrapped, 2, 12, 12))
        assert_fields_equal(guard.run(field, 4), ref)  # disarmed fast path
        TRACE.arm()
        try:
            assert_fields_equal(guard.run(field, 4), ref)
            names = {e.name for e in TRACE.events()}
            assert "codegen_round" in names
        finally:
            TRACE.disarm()


class TestSourceAndHash:
    def test_generated_source_is_plain_python(self):
        src = generate_sweep_source("7pt", parallel=False)
        compile(src, "<codegen>", "exec")  # must be syntactically valid
        assert "def sweep_py(" in src
        assert "prange" in src  # import guard is always emitted

    def test_parallel_variant_uses_prange_loop(self):
        ser = generate_sweep_source("7pt", parallel=False)
        par = generate_sweep_source("7pt", parallel=True)
        assert ser != par
        assert "in prange(ntiles)" in par

    def test_plan_hash_separates_kind_and_parallel(self):
        hashes = {
            plan_hash(kind, par)
            for kind in ("7pt", "27pt", "taps", "varco")
            for par in (False, True)
        }
        assert len(hashes) == 8

    def test_fingerprint_includes_cache_dir(self, tmp_path, monkeypatch):
        base = machine_fingerprint()
        monkeypatch.setenv(CODEGEN_CACHE_ENV, str(tmp_path / "elsewhere"))
        assert machine_fingerprint() != base


class TestDiskCache:
    def test_entry_written_under_fingerprint_dir(self):
        kernel = wrap_kernel(SevenPointStencil(), "codegen")
        field = Field3D.random((6, 12, 12), dtype=np.float32, seed=2)
        Blocking35D(kernel, 2, 8, 8).run(field, 2)
        cache = CodegenCache()
        assert cache.dir().name == machine_fingerprint()
        entries = cache.entries()
        assert len(entries) == 1
        name = entries[0].name
        assert name.startswith("sweep_7pt_ser_") and name.endswith(".py")

    def test_warm_start_performs_zero_generation(self):
        kernel = SevenPointStencil()
        field = Field3D.random((6, 12, 12), dtype=np.float32, seed=2)
        Blocking35D(wrap_kernel(kernel, "codegen"), 2, 8, 8).run(field, 2)
        assert CODEGEN_STATS.snapshot()["generated"] == 1
        # simulate a fresh process against the populated disk cache
        clear_module_cache()
        CODEGEN_STATS.reset()
        Blocking35D(wrap_kernel(kernel, "codegen"), 2, 8, 8).run(field, 2)
        snap = CODEGEN_STATS.snapshot()
        assert snap["generated"] == 0
        assert snap["loaded"] >= 1
        assert snap["quarantined"] == 0

    def test_corrupt_entry_quarantined_and_regenerated(self):
        kernel = SevenPointStencil()
        field = Field3D.random((6, 12, 12), dtype=np.float32, seed=2)
        ref = run_naive(kernel, field, 2)
        Blocking35D(wrap_kernel(kernel, "codegen"), 2, 8, 8).run(field, 2)
        path = CodegenCache().entries()[0]
        path.write_text("garbage not python {", encoding="utf-8")
        clear_module_cache()
        CODEGEN_STATS.reset()
        out = Blocking35D(wrap_kernel(kernel, "codegen"), 2, 8, 8).run(field, 2)
        assert_fields_equal(out, ref)
        snap = CODEGEN_STATS.snapshot()
        assert snap["quarantined"] == 1
        assert snap["generated"] == 1
        quarantined = list(CodegenCache().dir().glob("*.corrupt"))
        assert len(quarantined) == 1

    def test_clear_removes_entries(self):
        kernel = wrap_kernel(SevenPointStencil(), "codegen")
        field = Field3D.random((6, 12, 12), dtype=np.float32, seed=2)
        Blocking35D(kernel, 2, 8, 8).run(field, 2)
        cache = CodegenCache()
        assert cache.entries()
        cache.clear()
        assert cache.entries() == []

    def test_runner_cache_reused_and_dropped_from_state(self):
        kernel = wrap_kernel(SevenPointStencil(), "codegen")
        ex = Blocking35D(kernel, 2, 8, 8)
        field = Field3D.random((6, 12, 12), dtype=np.float32, seed=2)
        ex.run(field, 4)
        runners = list(kernel.__dict__.get("_sweep_runners", []))
        assert runners  # ping/pong pair bound once
        ex.run(field, 4)
        assert list(kernel.__dict__["_sweep_runners"]) == runners
        # bound runners hold grid-sized buffers + a loaded module: they must
        # not travel with the kernel through copy/pickle protocols
        assert "_sweep_runners" not in kernel.__getstate__()


class TestDistributedAndCLI:
    def test_distributed_per_rank_compute(self):
        from repro.distributed.runner import DistributedJacobi

        kernel = SevenPointStencil()
        field = Field3D.random((16, 14, 12), dtype=np.float32, seed=6)
        wrapped = wrap_kernel(kernel, "codegen")
        dj = DistributedJacobi(wrapped, n_ranks=3, dim_t=2, scheme="35d",
                               tile_y=8, tile_x=8)
        out, _comm = dj.run(field, 5)
        assert_fields_equal(out, run_naive(kernel, field, 5))

    def test_cli_run_backend_codegen(self, capsys):
        from repro.cli import main

        rc = main(["run", "--kernel", "7pt", "--grid", "16", "--steps", "2",
                   "--tile", "8", "--backend", "codegen"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "backend      : codegen" in captured.out
        assert "bit-identical" in captured.out

    def test_cli_info_lists_codegen(self, capsys):
        from repro.cli import main

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "codegen" in out

    def test_cache_env_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CODEGEN_CACHE_ENV, str(tmp_path / "other"))
        cache = CodegenCache()
        assert str(cache.dir()).startswith(str(tmp_path / "other"))
        assert os.environ[CODEGEN_CACHE_ENV] == str(tmp_path / "other")
