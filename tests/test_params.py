"""Tests for parameter selection (Equations 1, 3, 4) vs Section VI choices."""

import math

import pytest

from repro.core import (
    blocking_dim,
    capacity_bytes_needed,
    fits_capacity,
    min_dim_t,
    select_params,
)

MB = 1 << 20
KB = 1 << 10

# machine peak bytes/op ratios (Table I, raw peaks)
GAMMA_CPU_SP = 30 / 102  # 0.294
GAMMA_CPU_DP = 30 / 51  # 0.588
GAMMA_GPU_SP_RAW = 159 / 1116  # 0.1425 (with SFU+madd)
GAMMA_GPU_SP_REAL = 0.43  # paper's derated value for stencil op mixes


class TestMinDimT:
    """Equation 3 must reproduce every dim_T choice in Section VI."""

    def test_7pt_cpu_sp(self):
        assert min_dim_t(0.5, GAMMA_CPU_SP) == 2

    def test_7pt_cpu_dp(self):
        assert min_dim_t(1.0, GAMMA_CPU_DP) == 2

    def test_lbm_cpu_sp(self):
        # paper: "dim_T >= 2.9. We chose dim_T = 3"
        assert min_dim_t(0.88, GAMMA_CPU_SP) == 3

    def test_lbm_cpu_dp(self):
        assert min_dim_t(1.75, GAMMA_CPU_DP) == 3

    def test_lbm_gpu_sp(self):
        # paper: "dim_T >= 6.1" using the raw peak ratio
        assert min_dim_t(0.88, GAMMA_GPU_SP_RAW) == 7
        assert 6.1 == pytest.approx(0.88 / GAMMA_GPU_SP_RAW, abs=0.1)

    def test_gpu_7pt_dp_already_compute_bound(self):
        # γ = 1.0 < Γ = 1.7: dim_T = 1, no temporal blocking needed
        assert min_dim_t(1.0, 1.7) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            min_dim_t(0.0, 1.0)
        with pytest.raises(ValueError):
            min_dim_t(1.0, -1.0)


class TestBlockingDim:
    """Equation 4 must reproduce the dim_X values of Section VI."""

    def test_7pt_cpu_sp(self):
        # ((4)(4)(2) dimX dimY) <= 4MB -> dimX ~ 362; paper used 360
        d = blocking_dim(4 * MB, 4, 1, 2, align=1)
        assert d == 362
        assert blocking_dim(4 * MB, 4, 1, 2, align=4) == 360

    def test_7pt_cpu_dp(self):
        assert blocking_dim(4 * MB, 8, 1, 2, align=1) == 256

    def test_lbm_cpu_sp(self):
        # E = 80 bytes -> dimX <= 66; paper used 64
        assert blocking_dim(4 * MB, 80, 1, 3, align=1) == 66
        assert blocking_dim(4 * MB, 80, 1, 3, align=4) == 64

    def test_lbm_cpu_dp(self):
        # E = 160 bytes -> paper used 44
        assert blocking_dim(4 * MB, 160, 1, 3, align=4) == 44

    def test_7pt_gpu_sp_register_file(self):
        # 64 KB register file: "dim_X <= 45.2"; warp-aligned -> 32
        assert blocking_dim(64 * KB, 4, 1, 2, align=1) == 45
        assert blocking_dim(64 * KB, 4, 1, 2, align=32) == 32

    def test_lbm_gpu_sp_too_small(self):
        # 16 KB shared memory, E=160: dim_X <= 2 at dim_T=6 (paper VI-B)
        assert blocking_dim(16 * KB, 160, 1, 6, align=1) <= 2
        assert blocking_dim(16 * KB, 160, 1, 2, align=1) <= 4


class TestCapacity:
    def test_equation_1_arithmetic(self):
        assert capacity_bytes_needed(4, 1, 2, 360, 360) == 4 * 4 * 2 * 360 * 360

    def test_fits(self):
        assert fits_capacity(4 * MB, 4, 1, 2, 360, 360)
        assert not fits_capacity(4 * MB, 4, 1, 2, 512, 512)

    def test_planes_override(self):
        seq = capacity_bytes_needed(4, 1, 2, 64, 64, planes_per_instance=3)
        con = capacity_bytes_needed(4, 1, 2, 64, 64, planes_per_instance=4)
        assert con == seq * 4 // 3


class TestSelectParams:
    def test_7pt_cpu_sp_end_to_end(self):
        p = select_params(
            gamma=0.5, big_gamma=GAMMA_CPU_SP, capacity=4 * MB, element_size=4
        )
        assert p.feasible
        assert p.dim_t == 2
        assert p.dim_x == 360
        assert p.kappa == pytest.approx(1.02, abs=0.01)
        assert p.buffer_bytes <= 4 * MB

    def test_lbm_cpu_dp_end_to_end(self):
        p = select_params(
            gamma=1.75, big_gamma=GAMMA_CPU_DP, capacity=4 * MB, element_size=160
        )
        assert p.feasible
        assert p.dim_t == 3
        assert p.dim_x == 44
        assert p.kappa == pytest.approx(1.34, abs=0.01)

    def test_lbm_gpu_sp_infeasible(self):
        """Section VI-B: LBM SP cannot be blocked in 16 KB shared memory."""
        p = select_params(
            gamma=0.88,
            big_gamma=GAMMA_GPU_SP_RAW,
            capacity=16 * KB,
            element_size=160,
            align=1,
        )
        assert not p.feasible
        assert math.isinf(p.kappa)
        assert "too small" in p.reason

    def test_lbm_gpu_sp_infeasible_even_at_min_dim_t(self):
        p = select_params(
            gamma=0.88,
            big_gamma=GAMMA_GPU_SP_RAW,
            capacity=16 * KB,
            element_size=160,
            align=1,
            dim_t=2,
        )
        assert not p.feasible

    def test_explicit_dim_t_override(self):
        p = select_params(
            gamma=0.5,
            big_gamma=GAMMA_CPU_SP,
            capacity=4 * MB,
            element_size=4,
            dim_t=4,
        )
        assert p.dim_t == 4

    def test_bandwidth_reduction(self):
        p = select_params(
            gamma=0.88, big_gamma=GAMMA_CPU_SP, capacity=4 * MB, element_size=80
        )
        # net reduction dim_T/κ ~ 3/1.21 ~ 2.5 (this is what turns LBM
        # compute bound: 0.88 / 2.5 = 0.35... wait, must exceed γ/Γ)
        assert p.bandwidth_reduction() == pytest.approx(p.dim_t / p.kappa)
        assert p.bandwidth_reduction() > 1.0

    def test_future_trend_larger_dim_t(self):
        """Section VIII: lower Γ (falling bandwidth/compute) needs larger dim_T."""
        p_now = select_params(0.5, GAMMA_CPU_SP, 4 * MB, 4)
        p_future = select_params(0.5, GAMMA_CPU_SP / 2, 4 * MB, 4)
        assert p_future.dim_t > p_now.dim_t
        assert p_future.kappa > p_now.kappa  # and pays more overestimation
