"""Backend fallback chains: degrade gracefully, never change the bits.

Every kernel backend in :mod:`repro.perf.backends` is bit-exact against the
reference NumPy kernels, so a backend failure is never a reason to abort a
sweep — it is a reason to step down to the next-simplest backend and keep
going.  The chain follows the performance ladder downward::

    codegen -> fused-numba -> fused-numpy -> numpy-inplace -> numpy

:func:`bind_with_fallback` walks that chain.  A candidate is rejected when

* binding raises (backend unavailable, import error, injected
  ``backend.bind`` fault), or
* the optional *first-tile probe* — one real blocked step on the caller's
  grid, cross-checked bit-exactly against the reference kernel — raises or
  mismatches (JIT compile errors, injected ``backend.compute`` faults,
  silent miscompiles).

Each step down is recorded as a :class:`Degradation` and surfaced as a
structured :class:`DegradedExecutionWarning`; the CLI turns a degraded but
bit-correct run into exit code 3.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from .faultinject import FAULTS, ResilienceError

__all__ = [
    "FALLBACK_ORDER",
    "BoundBackend",
    "Degradation",
    "DegradedExecutionWarning",
    "FallbackExhaustedError",
    "bind_with_fallback",
    "fallback_chain",
]

#: the performance ladder, fastest first; a failing backend falls to the
#: next entry to its right
FALLBACK_ORDER = ("codegen", "fused-numba", "fused-numpy", "numpy-inplace", "numpy")


class FallbackExhaustedError(ResilienceError):
    """Every backend in the chain failed — including the reference."""


class DegradedExecutionWarning(UserWarning):
    """A sweep is running on a slower backend than requested (same bits)."""


@dataclass(frozen=True)
class Degradation:
    """One recorded step down the fallback chain."""

    stage: str  # "bind" or "probe"
    backend: str  # the backend that failed
    fallback: str  # the backend tried next
    reason: str

    def __str__(self) -> str:
        return (
            f"{self.backend} failed at {self.stage} ({self.reason}); "
            f"falling back to {self.fallback}"
        )


@dataclass
class BoundBackend:
    """Outcome of :func:`bind_with_fallback`."""

    kernel: object
    requested: str
    used: str
    degradations: list[Degradation] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)


def fallback_chain(name: str) -> list[str]:
    """Backends tried for a request of ``name``, in order.

    Known backends continue down :data:`FALLBACK_ORDER`; a custom registered
    backend falls straight to the reference.
    """
    if name in FALLBACK_ORDER:
        return list(FALLBACK_ORDER[FALLBACK_ORDER.index(name):])
    if name == "numpy":
        return ["numpy"]
    return [name, "numpy"]


def _probe_first_tile(wrapped, ref_kernel, name: str, probe_field) -> None:
    """Run one real blocked step and demand bit-exactness vs the reference.

    This is where lazily-failing backends (JIT compilation at first call,
    injected ``backend.compute`` faults) actually fail, and where a backend
    that runs but produces different bits is caught before it contaminates
    a long sweep.
    """
    from ..core.blocking35d import Blocking35D
    from ..core.naive import run_naive

    FAULTS.fire("backend.compute", detail=name)
    ny, nx = probe_field.ny, probe_field.nx
    out = Blocking35D(wrapped, 1, ny, nx).run(probe_field, 1)
    ref = run_naive(ref_kernel, probe_field, 1)
    if not np.array_equal(out.data, ref.data):
        raise ResilienceError(
            f"backend {name!r} probe mismatched the reference kernel"
        )


def bind_with_fallback(
    kernel,
    backend: str | None = None,
    probe_field=None,
) -> BoundBackend:
    """Bind ``kernel`` to ``backend``, degrading down the chain on failure.

    ``probe_field`` enables the first-tile probe: one blocked step on that
    field per candidate, cross-checked against the reference (pass the real
    run's grid so stateful kernels — LBM flags, variable coefficients — see
    their own geometry).  Without it only bind-time failures degrade.

    Raises :class:`FallbackExhaustedError` when even the reference backend
    fails, and plain ``ValueError`` for unknown backend names (a usage
    error, not a fault).
    """
    from ..perf.backends import default_backend_name, get_backend, wrap_kernel

    name = backend if backend is not None else default_backend_name()
    get_backend(name)  # unknown names are usage errors: raise ValueError now
    chain = fallback_chain(name)
    degradations: list[Degradation] = []
    for i, cand in enumerate(chain):
        stage = "bind"
        try:
            wrapped = wrap_kernel(kernel, cand)
            if probe_field is not None and cand != "numpy":
                stage = "probe"
                _probe_first_tile(wrapped, kernel, cand, probe_field)
        except Exception as exc:
            if i + 1 >= len(chain):
                raise FallbackExhaustedError(
                    f"no working backend for request {name!r}: "
                    f"{cand} failed at {stage} ({exc})"
                ) from exc
            deg = Degradation(
                stage=stage,
                backend=cand,
                fallback=chain[i + 1],
                reason=f"{type(exc).__name__}: {exc}",
            )
            degradations.append(deg)
            warnings.warn(DegradedExecutionWarning(str(deg)), stacklevel=2)
            continue
        return BoundBackend(
            kernel=wrapped, requested=name, used=cand, degradations=degradations
        )
    raise FallbackExhaustedError(f"no working backend for request {name!r}")
