"""Tests for the bench-regression differ: rules, noise gates, exit codes.

The differ is a CI gate, so the tests pin its *contract*: regressions
must clear both the relative tolerance and the absolute floor in the
harmful direction to fail; improvements and new metrics never fail; a
watched metric that vanishes fails loudly; and ``repro bench diff``
returns the 0/2/4 exit codes the workflows key on.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.regress import (
    DEFAULT_RULES,
    EXIT_OK,
    EXIT_REGRESSION,
    EXIT_USAGE,
    MetricRule,
    compare_docs,
    diff_bench_file,
    flatten_numeric,
    format_report,
)


def _by_metric(verdicts):
    return {v.metric: v for v in verdicts}


class TestFlatten:
    def test_nested_paths_and_bool_exclusion(self):
        doc = {"a": 1, "b": {"c": 2.5, "ok": True}, "s": "text",
               "list": [1, 2]}
        flat = flatten_numeric(doc)
        assert flat == {"a": 1.0, "b.c": 2.5}


class TestCompareDocs:
    RULES = [
        MetricRule("latency_p99_s", "lower", rel_tol=0.15, abs_floor=0.010),
        MetricRule("gups.*", "higher", rel_tol=0.15, abs_floor=0.02),
    ]

    def test_regression_needs_both_thresholds(self):
        base = {"latency_p99_s": 0.500}
        # 20% worse and > 10 ms: regression
        v = _by_metric(compare_docs({"latency_p99_s": 0.600}, base, self.RULES))
        assert v["latency_p99_s"].status == "regressed"
        # 20% worse but a 2 ms p99: under the absolute floor, noise
        v = _by_metric(compare_docs({"latency_p99_s": 0.0024},
                                    {"latency_p99_s": 0.0020}, self.RULES))
        assert v["latency_p99_s"].status == "ok"
        # 40 ms worse but only 8%: under the relative tolerance
        v = _by_metric(compare_docs({"latency_p99_s": 0.540}, base, self.RULES))
        assert v["latency_p99_s"].status == "ok"

    def test_direction_matters(self):
        # gups dropping 20% is harmful; latency dropping 20% is a win
        v = _by_metric(compare_docs(
            {"gups.7pt": 0.8, "latency_p99_s": 0.400},
            {"gups.7pt": 1.0, "latency_p99_s": 0.500}, self.RULES))
        assert v["gups.7pt"].status == "regressed"
        assert v["latency_p99_s"].status == "improved"

    def test_improvement_never_fails(self):
        v = _by_metric(compare_docs({"gups.7pt": 2.0}, {"gups.7pt": 1.0},
                                    self.RULES))
        assert v["gups.7pt"].status == "improved"

    def test_new_metric_ok_vanished_metric_missing(self):
        v = _by_metric(compare_docs({"gups.new": 1.0}, {}, self.RULES))
        assert v["gups.new"].status == "ok"
        v = _by_metric(compare_docs({}, {"gups.old": 1.0}, self.RULES))
        assert v["gups.old"].status == "missing"

    def test_unwatched_metrics_ignored(self):
        assert compare_docs({"queue_cap": 4}, {"queue_cap": 8},
                            self.RULES) == []

    def test_default_rules_cover_bench_keys(self):
        watched = [
            "latency_p99_s", "latency_p50_s", "queue_wait_p99_s",
            "service_p99_s", "jobs_per_s", "gups.threads=1.7pt.fused-numpy",
            "acceptance.fused_numpy_speedup",
        ]
        for key in watched:
            assert any(r.matches(key) for r in DEFAULT_RULES), key

    def test_format_report_orders_failures_first(self):
        verdicts = compare_docs(
            {"latency_p99_s": 0.9, "gups.7pt": 1.0},
            {"latency_p99_s": 0.5, "gups.7pt": 1.0}, self.RULES)
        lines = format_report("BENCH_x.json", verdicts)
        assert "FAIL" in lines[1] and "latency_p99_s" in lines[1]


class TestDiffBenchFile:
    def _write(self, path, doc):
        path.write_text(json.dumps(doc))
        return str(path)

    def test_missing_baseline_is_usage_error(self, tmp_path):
        cur = self._write(tmp_path / "BENCH_x.json", {"latency_p99_s": 0.5})
        code, lines, _ = diff_bench_file(cur, str(tmp_path / "baselines"))
        assert code == EXIT_USAGE
        assert "no baseline" in lines[0]

    def test_update_creates_then_identical_passes(self, tmp_path):
        cur = self._write(tmp_path / "BENCH_x.json", {"latency_p99_s": 0.5})
        basedir = str(tmp_path / "baselines")
        code, lines, _ = diff_bench_file(cur, basedir, update=True)
        assert code == EXIT_OK and "baseline created" in lines[0]
        code, _, verdicts = diff_bench_file(cur, basedir)
        assert code == EXIT_OK
        assert all(v.status == "ok" for v in verdicts)

    def test_injected_20_percent_regression_fails(self, tmp_path):
        basedir = tmp_path / "baselines"
        basedir.mkdir()
        self._write(basedir / "BENCH_x.json",
                    {"latency_p99_s": 0.500, "jobs_per_s": 60.0})
        cur = self._write(tmp_path / "BENCH_x.json",
                          {"latency_p99_s": 0.600, "jobs_per_s": 60.0})
        code, lines, verdicts = diff_bench_file(cur, str(basedir))
        assert code == EXIT_REGRESSION
        assert _by_metric(verdicts)["latency_p99_s"].status == "regressed"

    def test_update_refreshes_existing_baseline(self, tmp_path):
        basedir = tmp_path / "baselines"
        basedir.mkdir()
        self._write(basedir / "BENCH_x.json", {"latency_p99_s": 0.500})
        cur = self._write(tmp_path / "BENCH_x.json", {"latency_p99_s": 0.900})
        code, _, _ = diff_bench_file(cur, str(basedir), update=True)
        assert code == EXIT_OK
        assert json.loads((basedir / "BENCH_x.json").read_text()) == {
            "latency_p99_s": 0.900
        }
        # and the refreshed baseline now passes clean
        code, _, _ = diff_bench_file(cur, str(basedir))
        assert code == EXIT_OK

    def test_missing_current_file(self, tmp_path):
        code, lines, _ = diff_bench_file(str(tmp_path / "nope.json"),
                                         str(tmp_path))
        assert code == EXIT_USAGE

    def test_committed_baselines_are_self_consistent(self):
        """The baselines shipped in-repo diff clean against themselves."""
        from pathlib import Path

        basedir = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
        for name in ("BENCH_serve.json", "BENCH_fused.json"):
            path = basedir / name
            assert path.exists(), f"{name} baseline must be committed"
            code, lines, _ = diff_bench_file(str(path), str(basedir))
            assert code == EXIT_OK, lines
