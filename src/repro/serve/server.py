"""The long-lived sweep daemon: admission, deadlines, degradation, drain.

:class:`ServeCore` is the whole service with the sockets peeled off — a
bounded priority queue fed by admission control, a pool of worker threads
driving jobs round-by-round (the same round granularity that makes
:class:`~repro.resilience.watchdog.GuardedSweep` checkpoints bit-exact),
a crash-safe :class:`~repro.serve.journal.JobJournal`, and per-job
on-disk checkpoints.  :class:`JobServer` is the thin unix-socket
front-end speaking the newline-JSON protocol of
:mod:`repro.serve.protocol`.

Robustness invariants (each one is load-bearing and tested):

* **No unbounded growth, no hangs.**  Every submit is answered
  immediately; the queue has a hard capacity; a full queue sheds
  strictly-lower-priority work or rejects the newcomer, always with a
  reason string.
* **Deadlines are cooperative.**  Workers check the clock at round
  boundaries only, so a cancelled/expired/preempted job always leaves a
  consistent grid; a preempted job checkpoints, requeues, and later
  resumes bit-exact.
* **Degrade before shedding.**  Under overload the service first falls
  down the quality ladder — unavailable backends degrade through the
  existing fallback chain, then verification is shed (jobs complete as
  status 3, degraded-but-correct) — and only sheds whole jobs when the
  queue is physically full.
* **Crash-safe lifecycle.**  A job is *accepted* exactly when its journal
  record is durably appended; SIGTERM drains the queue with zero
  accepted-job loss, and a SIGKILL mid-job recovers on restart by
  replaying the journal and resuming from the job's checkpoint.
"""

from __future__ import annotations

import hashlib
import socket
import threading
import time
from pathlib import Path

import numpy as np

from ..core.blocking35d import Blocking35D
from ..core.naive import run_naive
from ..core.traffic import TrafficStats
from ..obs.metrics import METRICS, MetricsRegistry
from ..obs.serving import JobTraceLog, UsageLedger, prometheus_exposition
from ..obs.trace import TRACE
from ..resilience.checkpoint import CheckpointError, CheckpointStore
from ..resilience.fallback import bind_with_fallback
from ..resilience.faultinject import FAULTS, ResilienceError
from ..resilience.sdc import SdcError, SdcGuard, inject_flips
from ..stencils.grid import Field3D
from ..stencils.seven_point import SevenPointStencil
from ..stencils.twentyseven_point import TwentySevenPointStencil
from .admission import AdmissionController, BoundedPriorityQueue
from .journal import JobJournal
from .protocol import (
    PROTOCOL_VERSION,
    JobRecord,
    JobSpec,
    read_message,
    write_message,
)

__all__ = ["JobServer", "PlanCache", "ServeCore", "make_field", "make_kernel"]

#: overload levels, in escalation order
GREEN, AMBER, RED = "green", "amber", "red"


def make_kernel(spec: JobSpec):
    """The reference kernel for a job spec (serve runs the pure stencils)."""
    if spec.kernel == "27pt":
        return TwentySevenPointStencil()
    return SevenPointStencil()


def make_field(spec: JobSpec) -> Field3D:
    """The deterministic initial grid of a job: (grid, precision, seed)."""
    dtype = np.float32 if spec.precision == "sp" else np.float64
    return Field3D.random(
        (spec.grid,) * 3, dtype=dtype, seed=spec.seed
    )


def grid_sha256(data: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(data).tobytes()).hexdigest()


class PlanCache:
    """Warm-start cache of bound backends, keyed by the job signature.

    Binding a backend is the expensive part of job startup (the fallback
    chain runs a first-tile bit-exactness probe per candidate), so bound
    kernels are reused across jobs with the same signature.  Executors are
    *not* shared — they hold per-run ping/pong buffers and are not safe
    across worker threads — but construction from a warm bound kernel is
    cheap.  ``hits``/``misses`` feed the bench's warm-plan reuse rate.
    """

    def __init__(self) -> None:
        self._plans: dict[tuple, tuple] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, spec: JobSpec, probe_field: Field3D):
        """(bound kernel, backend used, degradation strings) for ``spec``."""
        key = spec.signature()
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                return plan
        bound = bind_with_fallback(
            make_kernel(spec), spec.backend, probe_field=probe_field
        )
        plan = (bound.kernel, bound.used, [str(d) for d in bound.degradations])
        with self._lock:
            self._plans[key] = plan
            self.misses += 1
        return plan

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._plans),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
            }


class _JobContext:
    """Mutable per-job runtime state the record does not carry."""

    __slots__ = ("record", "state", "cancel", "preempt", "deadline_at",
                 "trace", "enqueued_ns")

    def __init__(self, record: JobRecord):
        self.record = record
        self.state: Field3D | None = None
        self.cancel = threading.Event()
        self.preempt = threading.Event()
        self.deadline_at: float | None = None
        #: per-job span log when the submit carried a trace_id, else None
        self.trace: JobTraceLog | None = (
            JobTraceLog(record.spec.trace_id, record.id)
            if record.spec.trace_id else None
        )
        #: epoch-ns of the last enqueue, for the queue-wait measurement
        self.enqueued_ns = 0


class ServeCore:
    """The serving engine: admission -> queue -> workers -> journal."""

    def __init__(
        self,
        state_dir: str,
        *,
        workers: int = 2,
        rate: float = 100.0,
        burst: float = 200.0,
        queue_cap: int = 16,
        tenant_quota: int = 8,
        default_deadline_s: float | None = None,
        checkpoint_every_rounds: int = 4,
        degrade_at: float = 0.5,
        stall_s: float = 0.05,
        fsync: bool = True,
        clock=time.monotonic,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        (self.state_dir / "checkpoints").mkdir(exist_ok=True)
        self.journal = JobJournal(self.state_dir / "journal.jsonl", fsync=fsync)
        self.admission = AdmissionController(
            rate=rate, burst=burst, tenant_quota=tenant_quota, clock=clock
        )
        self.queue = BoundedPriorityQueue(queue_cap)
        self.n_workers = workers
        self.default_deadline_s = default_deadline_s
        self.checkpoint_every_rounds = max(1, checkpoint_every_rounds)
        self.degrade_at = degrade_at
        self.stall_s = stall_s
        self.plans = PlanCache()
        self._clock = clock
        self._lock = threading.RLock()
        self._jobs: dict[str, _JobContext] = {}
        self._order: list[str] = []
        self._threads: list[threading.Thread] = []
        self._idgen = 0
        self._busy = 0
        self._draining = False
        self._stopping = False
        self._hard_kill = False
        self._started_at = clock()
        self.counters = {
            "accepted": 0, "rejected": 0, "dropped": 0, "shed": 0,
            "completed": 0, "degraded": 0, "failed": 0, "cancelled": 0,
            "deadline_misses": 0, "preemptions": 0, "resumes": 0,
            "recovered": 0, "verification_shed": 0, "sdc_shed": 0,
        }
        self.replay_info: dict = {}
        # Serving telemetry is always-on: the daemon owns a private armed
        # registry (the process-wide METRICS stays disarmed-by-default and
        # is mirrored into only when a bench/test arms it), and a
        # per-tenant usage ledger rolled up to fsync'd JSONL beside the
        # journal.  Integer charges only, so ledger-vs-counter
        # reconciliation is exact.
        self.metrics = MetricsRegistry()
        self.metrics.arm()
        self.ledger = UsageLedger(
            str(self.state_dir / "ledger.jsonl"), fsync=fsync
        )

    # ------------------------------------------------------------------
    # telemetry plumbing (dual-write: own registry + global mirror)
    # ------------------------------------------------------------------
    def _inc(self, name: str, value: float = 1) -> None:
        self.metrics.inc(name, value)
        METRICS.inc(name, value)

    def _observe_q(self, name: str, value: float) -> None:
        self.metrics.observe_quantile(name, value)
        METRICS.observe_quantile(name, value)

    def _note_queue_depth(self) -> None:
        """The one place the queue-depth gauge is written.

        Both the submit path and the worker loop used to set the gauge
        independently; centralizing it also samples the age of the
        oldest queued job (``serve.queue_age_s``) so a stuck queue shows
        up as a growing histogram max, not just a flat depth.
        """
        depth = len(self.queue)
        self.metrics.set_gauge("serve.queue_depth", depth)
        METRICS.set_gauge("serve.queue_depth", depth)
        oldest_ns = 0
        with self._lock:
            for jid in self.queue.snapshot():
                ctx = self._jobs.get(jid)
                if ctx is not None and ctx.enqueued_ns:
                    if oldest_ns == 0 or ctx.enqueued_ns < oldest_ns:
                        oldest_ns = ctx.enqueued_ns
        if oldest_ns:
            age_s = max(0.0, (time.time_ns() - oldest_ns) / 1e9)
            self.metrics.observe("serve.queue_age_s", age_s)
            METRICS.observe("serve.queue_age_s", age_s)

    def ledger_reconciliation(self) -> list[str]:
        """Billing-vs-metering check: ledger totals against the global
        counters this core maintained.  Empty list = exact agreement."""
        m = self.metrics
        return self.ledger.reconcile({
            "site_updates": int(m.counter("serve.site_updates")),
            "bytes_read": int(m.counter("traffic.bytes_read")),
            "bytes_written": int(m.counter("traffic.bytes_written")),
            "cpu_ns": int(m.counter("serve.cpu_ns")),
            "verify_cpu_ns": int(m.counter("serve.verify_cpu_ns")),
            "completed": self.counters["completed"],
            "degraded": self.counters["degraded"],
            "failed": self.counters["failed"],
            "cancelled": self.counters["cancelled"],
            "shed": self.counters["shed"],
            "preempted": self.counters["preemptions"],
            "rejected": self.counters["rejected"],
        })

    def spans(self, jid: str) -> list[dict] | None:
        """The daemon-side job spans for a traced job (None if untraced)."""
        with self._lock:
            ctx = self._jobs.get(jid)
        if ctx is None or ctx.trace is None:
            return None
        return ctx.trace.to_dicts()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Replay the journal, requeue unfinished accepted jobs, spawn workers."""
        self._recover()
        for i in range(self.n_workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def _recover(self) -> None:
        replay = self.journal.replay()
        self.replay_info = {
            "records": len(replay.records),
            "quarantined_records": replay.quarantined_records,
            "quarantined_bytes": replay.quarantined_bytes,
            "truncated_tail": replay.truncated_tail,
        }
        latest: dict[str, JobRecord] = {}
        order: list[str] = []
        for rec in replay.records:
            ev, jid = rec.get("ev"), rec.get("id")
            if ev == "accepted" and jid:
                spec = JobSpec.from_dict(rec.get("job") or {})
                latest[jid] = JobRecord(
                    id=jid, spec=spec, submitted_s=0.0,
                )
                order.append(jid)
            elif jid in latest:
                r = latest[jid]
                if ev == "started":
                    r.status = "running"
                elif ev == "requeued":
                    r.status = "queued"
                    r.done_steps = int(rec.get("done", 0))
                elif ev == "done":
                    r.status = rec.get("status", "done")
                    r.sha256 = rec.get("sha256", "")
                    r.reason = rec.get("reason", "")
                    r.backend_used = rec.get("backend", "")
                    r.finished_s = 0.0
                elif ev in ("shed", "cancelled", "rejected"):
                    r.status = "shed" if ev == "shed" else "cancelled"
                    r.reason = rec.get("reason", "")
                    r.finished_s = 0.0
        now = self._clock()
        for jid in order:
            record = latest[jid]
            ctx = _JobContext(record)
            with self._lock:
                self._jobs[jid] = ctx
                self._order.append(jid)
            n = int(jid[1:]) if jid[1:].isdigit() else 0
            self._idgen = max(self._idgen, n)
            if record.terminal:
                continue
            # an accepted job that never reached a terminal record: the
            # crash-recovery path.  Resume from its checkpoint if one
            # survives, else restart from step 0 — both bit-exact.
            record.status = "queued"
            record.submitted_s = now
            if record.spec.deadline_s is not None:
                ctx.deadline_at = now + record.spec.deadline_s
            store = self._checkpoint_store(jid)
            try:
                snap = store.load(
                    expected_shape=(1,) + (record.spec.grid,) * 3,
                    expected_dtype=np.float32
                    if record.spec.precision == "sp" else np.float64,
                )
            except CheckpointError:
                snap = None
            if snap is not None and 0 < snap.step <= record.spec.steps:
                state = Field3D.from_array(snap.data.copy())
                ctx.state = state
                record.done_steps = snap.step
                record.resumes += 1
                self.counters["resumes"] += 1
            else:
                record.done_steps = 0
                ctx.state = None
            self.counters["recovered"] += 1
            self.journal.append(
                "recovered", id=jid, done=record.done_steps, durable=False
            )
            ctx.enqueued_ns = time.time_ns()
            self.queue.push(jid, record.spec.priority, force=True)

    def drain(self, timeout: float | None = 60.0) -> bool:
        """Stop accepting, finish every queued/running job, stop workers.

        Returns True when every accepted job reached a terminal status
        (the zero-loss guarantee); the journal records the drain either way.
        """
        with self._lock:
            self._draining = True
        deadline = time.monotonic() + timeout if timeout is not None else None
        while True:
            with self._lock:
                idle = len(self.queue) == 0 and self._busy == 0
            if idle:
                break
            if deadline is not None and time.monotonic() > deadline:
                break
            time.sleep(0.02)
        self._stopping = True
        for t in self._threads:
            t.join(timeout=5.0)
        clean = all(
            ctx.record.terminal for ctx in self._jobs.values()
        )
        self.journal.append("drained", clean=clean)
        self.journal.close()
        self.ledger.rollup()  # final billing snapshot survives the daemon
        return clean

    def kill(self) -> None:
        """Abandon the daemon abruptly (test stand-in for SIGKILL).

        Workers stop at the next round boundary *without* journaling a
        terminal record for in-flight jobs — exactly the state a killed
        process leaves behind.  Restarting a new core on the same state
        dir must recover from the journal + checkpoints.
        """
        self._hard_kill = True
        self._stopping = True
        for t in self._threads:
            t.join(timeout=5.0)
        self.journal.close()

    # ------------------------------------------------------------------
    # client operations
    # ------------------------------------------------------------------
    def submit(self, doc: dict) -> dict:
        """Admit (or refuse) one job; always answers immediately."""
        admit_t0_ns = time.time_ns()
        try:
            spec = JobSpec.from_dict(doc or {})
        except (TypeError, ValueError) as exc:
            return {"ok": False, "error": "rejected",
                    "reason": f"malformed job: {exc}"}
        now = self._clock()
        with self._lock:
            tenant_inflight = sum(
                1 for ctx in self._jobs.values()
                if ctx.record.spec.tenant == spec.tenant
                and not ctx.record.terminal
            )
            draining = self._draining or self._stopping
        record = JobRecord(id="", spec=spec, submitted_s=now)
        decision = self.admission.admit(
            record, self.queue, tenant_inflight, draining=draining
        )
        if not decision.ok:
            self.counters["rejected"] += 1
            self._inc("serve.rejected")
            self.ledger.count(spec.tenant, "rejected")
            return {"ok": False, "error": "rejected", "reason": decision.reason}
        if FAULTS.should("serve.accept"):
            # admitted, then dropped before the journal commit point: the
            # client gets an explicit retryable error, never silence, and
            # nothing was journaled so no state can leak
            if decision.shed is not None:
                shed_ctx = self._jobs.get(decision.shed)
                if shed_ctx is not None:
                    self.queue.push(
                        decision.shed, shed_ctx.record.spec.priority,
                        force=True,
                    )
            self.counters["dropped"] += 1
            return {
                "ok": False, "error": "dropped",
                "reason": "accepted job dropped before the journal commit "
                          "(injected accept-drop); safe to retry",
            }
        if decision.shed is not None:
            self._mark_shed(
                decision.shed,
                "shed under overload: displaced by a higher-priority job",
            )
        with self._lock:
            self._idgen += 1
            jid = f"j{self._idgen:06d}"
            record.id = jid
            ctx = _JobContext(record)
            deadline_s = spec.deadline_s or self.default_deadline_s
            if deadline_s is not None:
                ctx.deadline_at = now + deadline_s
            self._jobs[jid] = ctx
            self._order.append(jid)
        # acceptance commit point: reply "accepted" only after this record
        # is durably on disk
        self.journal.append(
            "accepted", id=jid, job=spec.to_dict(), priority=spec.priority,
            deadline_s=deadline_s,
        )
        self.counters["accepted"] += 1
        self._inc("serve.accepted")
        ctx.enqueued_ns = time.time_ns()
        if ctx.trace is not None:
            ctx.trace.add(
                "job_admit", admit_t0_ns, ctx.enqueued_ns,
                tenant=spec.tenant, priority=spec.priority,
                shed=decision.shed or "",
            )
        self.queue.push(jid, spec.priority)
        self._note_queue_depth()
        self._maybe_preempt(spec.priority)
        return {"ok": True, "id": jid, "status": "queued",
                "shed": decision.shed}

    def status(self, jid: str) -> JobRecord | None:
        with self._lock:
            ctx = self._jobs.get(jid)
            return ctx.record if ctx else None

    def jobs(self) -> list[JobRecord]:
        with self._lock:
            return [self._jobs[j].record for j in self._order if j in self._jobs]

    def cancel(self, jid: str) -> dict:
        with self._lock:
            ctx = self._jobs.get(jid)
        if ctx is None:
            return {"ok": False, "error": "not-found", "reason": f"no job {jid}"}
        record = ctx.record
        if record.terminal:
            return {"ok": True, "id": jid, "status": record.status,
                    "reason": "already terminal"}
        removed = self.queue.remove(lambda item: item == jid)
        if removed:
            self._finish(ctx, "cancelled", "cancelled by client while queued")
            return {"ok": True, "id": jid, "status": "cancelled"}
        ctx.cancel.set()
        return {"ok": True, "id": jid, "status": record.status,
                "reason": "cancellation requested; takes effect at the next "
                          "round boundary"}

    def stats(self) -> dict:
        with self._lock:
            live = sum(1 for c in self._jobs.values() if not c.record.terminal)
            base = {
                "version": PROTOCOL_VERSION,
                "uptime_s": self._clock() - self._started_at,
                "queue_depth": len(self.queue),
                "queue_cap": self.queue.capacity,
                "busy_workers": self._busy,
                "workers": self.n_workers,
                "live_jobs": live,
                "overload": self.overload_level(),
                "draining": self._draining,
                "counters": dict(self.counters),
                "plan_cache": self.plans.stats(),
                "replay": dict(self.replay_info),
            }
        # outside the core lock: the registry and ledger have their own
        metrics = self.metrics.to_dict()
        base["metrics"] = metrics
        base["latency"] = {
            name: metrics.get("quantiles", {}).get(name)
            for name in ("serve.queue_wait_s", "serve.service_s",
                         "serve.latency_s")
            if metrics.get("quantiles", {}).get(name)
        }
        base["tenants"] = self.ledger.per_tenant()
        base["ledger_totals"] = self.ledger.totals()
        base["ledger_mismatches"] = self.ledger_reconciliation()
        return base

    # ------------------------------------------------------------------
    # scheduling policy
    # ------------------------------------------------------------------
    def overload_level(self) -> str:
        depth = len(self.queue)
        if depth >= self.queue.capacity:
            return RED
        if depth >= self.degrade_at * self.queue.capacity:
            return AMBER
        return GREEN

    def _maybe_preempt(self, new_priority: int) -> None:
        """Ask the worst-priority running job to yield to better queued work."""
        with self._lock:
            if self._busy < self.n_workers:
                return  # an idle worker will pick the new job up directly
            victim: _JobContext | None = None
            for ctx in self._jobs.values():
                r = ctx.record
                if r.status != "running" or ctx.preempt.is_set():
                    continue
                if r.spec.priority > new_priority and (
                    victim is None
                    or r.spec.priority > victim.record.spec.priority
                ):
                    victim = ctx
            if victim is not None:
                victim.preempt.set()

    def _mark_shed(self, jid: str, reason: str) -> None:
        with self._lock:
            ctx = self._jobs.get(jid)
        if ctx is None:
            return
        self._finish(ctx, "shed", reason)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stopping:
            jid = self.queue.pop(timeout=0.05)
            if jid is None:
                continue
            with self._lock:
                ctx = self._jobs.get(jid)
                if ctx is None or ctx.record.terminal:
                    continue
                self._busy += 1
            try:
                self._run_job(ctx)
            except Exception as exc:  # a worker must never die silently
                self._finish(
                    ctx, "failed",
                    f"internal error: {type(exc).__name__}: {exc}",
                )
            finally:
                with self._lock:
                    self._busy -= 1
                self._note_queue_depth()

    def _checkpoint_store(self, jid: str) -> CheckpointStore:
        return CheckpointStore(self.state_dir / "checkpoints" / f"{jid}.npz")

    def _run_job(self, ctx: _JobContext) -> None:
        record = ctx.record
        spec = record.spec
        resumed = ctx.state is not None
        picked_ns = time.time_ns()
        if ctx.enqueued_ns:
            self._observe_q(
                "serve.queue_wait_s", (picked_ns - ctx.enqueued_ns) / 1e9
            )
            if ctx.trace is not None:
                ctx.trace.add(
                    "job_queue_wait", ctx.enqueued_ns, picked_ns,
                    resumed=resumed,
                )
            ctx.enqueued_ns = 0
        with self._lock:
            record.status = "running"
            if record.started_s is None:
                record.started_s = self._clock()
        self.journal.append(
            "resumed" if resumed else "started",
            id=record.id, done=record.done_steps, durable=False,
        )
        if FAULTS.should("serve.deadline", detail=spec.tenant):
            ctx.deadline_at = self._clock() - 1.0  # storm: already expired
        degraded_reasons: list[str] = []
        verify = spec.verify
        if verify and self.overload_level() != GREEN:
            # degrade before shedding: drop the cross-check first
            verify = False
            degraded_reasons.append(
                "overload: result verification shed (grid "
                f"{self.overload_level()})"
            )
            self.counters["verification_shed"] += 1
        integrity = getattr(spec, "integrity", "off") or "off"
        if integrity != "off" and self.overload_level() != GREEN:
            # integrity checks degrade exactly like result verification:
            # shed under amber, job completes degraded-but-correct
            degraded_reasons.append(
                f"overload: integrity tier {integrity} shed (grid "
                f"{self.overload_level()})"
            )
            self.counters["sdc_shed"] += 1
            self._inc("serve.sdc_shed")
            integrity = "off"
        try:
            field = ctx.state if ctx.state is not None else make_field(spec)
            kernel, used, plan_degradations = self.plans.get(spec, field)
            record.backend_used = used
            degraded_reasons = plan_degradations + degraded_reasons
            executor = Blocking35D(kernel, spec.dim_t, spec.tile, spec.tile)
        except (ValueError, ResilienceError) as exc:
            self._finish(
                ctx, "failed", f"cannot bind job: {type(exc).__name__}: {exc}"
            )
            return
        state = field
        store = self._checkpoint_store(record.id)
        rounds_since_ck = 0
        rounds_done = 0
        # the SDC tier: the guard re-executes through the *reference*
        # kernel (a different rung of the bit-exact ladder than the bound
        # backend), from a trusted base refreshed each verified round
        guard: SdcGuard | None = None
        good_state: Field3D | None = None
        good_done = record.done_steps
        if integrity != "off":
            guard = SdcGuard(
                make_kernel(spec), tier=integrity, seed=spec.seed
            )
            good_state = Field3D.from_array(field.data.copy())

        def _integrity_phase(name: str, fn):
            """One metered guard phase: cpu to the tenant's verify_cpu_ns,
            counter deltas to the daemon registry (the guard writes the
            global METRICS itself when armed — no dual write here, or an
            armed bench would double-count), wall span to the job trace."""
            t0 = time.perf_counter_ns()
            w0 = time.time_ns()
            r = guard.report
            before = (r.checks, r.detections, r.heals, r.replayed_cells)
            try:
                return fn()
            finally:
                ns = time.perf_counter_ns() - t0
                self.ledger.charge(spec.tenant, verify_cpu_ns=ns)
                self._inc("serve.verify_cpu_ns", ns)
                for key, b, a in (
                    ("sdc.checks", before[0], r.checks),
                    ("sdc.detected", before[1], r.detections),
                    ("sdc.healed", before[2], r.heals),
                    ("sdc.replayed_cells", before[3], r.replayed_cells),
                ):
                    if a > b:
                        self.metrics.inc(key, a - b)
                if ctx.trace is not None:
                    ctx.trace.add(
                        name, w0, time.time_ns(), tier=integrity,
                        detections=r.detections,
                    )
                    if r.heals > before[2]:
                        ctx.trace.add(
                            "sdc_heal", w0, time.time_ns(),
                            heals=r.heals - before[2],
                            replayed_cells=r.replayed_cells,
                        )

        run_t0_ns = time.time_ns()
        try:
            with TRACE.span(
                "serve_job", id=record.id, kernel=spec.kernel, grid=spec.grid,
                tenant=spec.tenant, priority=spec.priority,
            ):
                while record.done_steps < spec.steps:
                    if self._hard_kill:
                        ctx.state = state  # lost with the process; journal decides
                        return
                    if ctx.cancel.is_set():
                        self._finish(
                            ctx, "cancelled",
                            f"cancelled by client after "
                            f"{record.done_steps}/{spec.steps} steps",
                        )
                        store.clear()
                        return
                    if (
                        ctx.deadline_at is not None
                        and self._clock() > ctx.deadline_at
                    ):
                        self.counters["deadline_misses"] += 1
                        self._inc("serve.deadline_misses")
                        self._finish(
                            ctx, "failed",
                            f"deadline exceeded after "
                            f"{record.done_steps}/{spec.steps} steps",
                        )
                        store.clear()
                        return
                    if ctx.preempt.is_set():
                        ctx.preempt.clear()
                        store.save(
                            state.data, record.done_steps, {"id": record.id}
                        )
                        ctx.state = state
                        with self._lock:
                            record.status = "queued"
                            record.preemptions += 1
                        self.counters["preemptions"] += 1
                        self._inc("serve.preemptions")
                        self.ledger.count(spec.tenant, "preempted")
                        self.journal.append(
                            "requeued", id=record.id, done=record.done_steps,
                            durable=False,
                        )
                        ctx.enqueued_ns = time.time_ns()
                        self.queue.push(record.id, spec.priority, force=True)
                        return
                    if FAULTS.should("serve.stall"):
                        time.sleep(self.stall_s)
                    if guard is not None:
                        # resting corruption since the last seal is healed
                        # BEFORE this round consumes it
                        state = _integrity_phase(
                            "sdc_check",
                            lambda: guard.verify_seals(
                                state, record.done_steps, good_state,
                                good_done,
                            ),
                        )
                    round_t = min(spec.dim_t, spec.steps - record.done_steps)
                    # meter the round: modeled traffic + worker cpu time,
                    # charged to the tenant and mirrored into the global
                    # counters with *integer* arithmetic so the ledger
                    # reconciles exactly
                    traffic = TrafficStats()
                    cpu_t0 = time.perf_counter_ns()
                    round_w0 = time.time_ns()
                    state = executor.run(state, round_t, traffic)
                    cpu_ns = time.perf_counter_ns() - cpu_t0
                    if ctx.trace is not None:
                        ctx.trace.add(
                            "job_round", round_w0, time.time_ns(),
                            steps=round_t, done=record.done_steps + round_t,
                            updates=traffic.updates,
                        )
                    self.ledger.charge(
                        spec.tenant,
                        site_updates=traffic.updates,
                        bytes_read=traffic.bytes_read,
                        bytes_written=traffic.bytes_written,
                        cpu_ns=cpu_ns,
                    )
                    self._inc("serve.site_updates", traffic.updates)
                    self._inc("serve.cpu_ns", cpu_ns)
                    self._inc("traffic.bytes_read", traffic.bytes_read)
                    self._inc("traffic.bytes_written", traffic.bytes_written)
                    record.done_steps += round_t
                    if guard is not None:
                        def _check_and_seal():
                            out = guard.check_round(
                                state, record.done_steps, good_state,
                                good_done, rounds_done,
                            )
                            guard.seal(out)
                            return out
                        state = _integrity_phase("sdc_check", _check_and_seal)
                        # the just-verified state becomes the trusted base
                        # (refreshed PRE-flip, so it stays clean); the
                        # memory.flip probe then fires in-window
                        good_state = Field3D.from_array(state.data.copy())
                        good_done = record.done_steps
                        inject_flips(
                            state.data, rank=0, round_index=rounds_done,
                            seed=spec.seed,
                        )
                    rounds_done += 1
                    rounds_since_ck += 1
                    if (
                        rounds_since_ck >= self.checkpoint_every_rounds
                        and record.done_steps < spec.steps
                    ):
                        store.save(
                            state.data, record.done_steps, {"id": record.id}
                        )
                        rounds_since_ck = 0
                if guard is not None:
                    # flips landing after the final seal stay in-window
                    state = _integrity_phase(
                        "sdc_check",
                        lambda: guard.verify_seals(
                            state, record.done_steps, good_state, good_done
                        ),
                    )
        except SdcError as exc:
            self._finish(
                ctx, "failed", f"integrity: {type(exc).__name__}: {exc}"
            )
            store.clear()
            return
        finally:
            if ctx.trace is not None:
                ctx.trace.add(
                    "job_run", run_t0_ns, time.time_ns(),
                    done=record.done_steps, status=record.status,
                    backend=record.backend_used,
                )
        if guard is not None and guard.report.degraded:
            degraded_reasons.append(
                f"sdc: {guard.report.detections} detection(s), "
                f"{guard.report.heals} healed surgically (tier {integrity})"
            )
        sha = grid_sha256(state.data)
        if verify:
            ref = run_naive(make_kernel(spec), make_field(spec), spec.steps)
            if not np.array_equal(state.data, ref.data):
                self._finish(
                    ctx, "failed", "result mismatched the naive reference"
                )
                store.clear()
                return
        ctx.state = None
        store.clear()
        status = "degraded" if degraded_reasons else "done"
        with self._lock:
            record.sha256 = sha
            record.degradations = degraded_reasons
        self._finish(ctx, status, "")

    def _finish(self, ctx: _JobContext, status: str, reason: str) -> None:
        record = ctx.record
        with self._lock:
            if record.terminal:
                return
            record.status = status
            record.reason = reason
            record.finished_s = self._clock()
        self.journal.append(
            "done" if status in ("done", "degraded", "failed") else status,
            id=record.id, status=status, reason=reason, sha256=record.sha256,
            backend=record.backend_used, code=record.code,
        )
        key = {
            "done": "completed", "degraded": "degraded", "failed": "failed",
            "cancelled": "cancelled", "shed": "shed",
        }.get(status)
        if key:
            self.counters[key] += 1
            self._inc(f"serve.{key}")
            self.ledger.count(record.spec.tenant, key)
        if record.started_s is not None and record.finished_s is not None:
            self._observe_q(
                "serve.service_s", max(0.0, record.finished_s - record.started_s)
            )
        if record.finished_s is not None:
            self._observe_q(
                "serve.latency_s",
                max(0.0, record.finished_s - record.submitted_s),
            )


class JobServer:
    """Unix-socket front-end: newline-JSON requests dispatched onto a core."""

    def __init__(self, core: ServeCore, socket_path: str) -> None:
        self.core = core
        self.socket_path = Path(socket_path)
        self._listener: socket.socket | None = None
        self._thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._closing = False

    def start(self) -> None:
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self.socket_path.unlink()
        except OSError:
            pass
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(str(self.socket_path))
        self._listener.listen(64)
        self._thread = threading.Thread(
            target=self._accept_loop, name="serve-listener", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._closing = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        try:
            self.socket_path.unlink()
        except OSError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closing:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            t = threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            )
            t.start()
            self._conn_threads.append(t)
            self._conn_threads = [
                ct for ct in self._conn_threads if ct.is_alive()
            ]

    def _handle(self, conn: socket.socket) -> None:
        fh = conn.makefile("rwb")
        try:
            while True:
                try:
                    msg = read_message(fh)
                except ValueError as exc:
                    write_message(
                        fh, {"ok": False, "error": "bad-request",
                             "reason": str(exc)}
                    )
                    return
                if msg is None:
                    return
                write_message(fh, self.dispatch(msg))
        except (OSError, BrokenPipeError):
            pass
        finally:
            try:
                fh.close()
                conn.close()
            except OSError:
                pass

    def dispatch(self, msg: dict) -> dict:
        op = msg.get("op")
        core = self.core
        if op == "ping":
            return {"ok": True, "version": PROTOCOL_VERSION}
        if op == "submit":
            return core.submit(msg.get("job") or {})
        if op in ("status", "result"):
            jid = str(msg.get("id", ""))
            record = core.status(jid)
            if record is None:
                return {"ok": False, "error": "not-found",
                        "reason": f"no job {msg.get('id')!r}"}
            reply = {"ok": True, "job": record.to_dict()}
            if msg.get("spans"):
                reply["spans"] = core.spans(jid) or []
            return reply
        if op == "jobs":
            return {"ok": True,
                    "jobs": [r.to_dict() for r in core.jobs()]}
        if op == "stats":
            st = core.stats()
            reply = {"ok": True, "stats": st}
            if msg.get("prom"):
                reply["prom"] = prometheus_exposition(st["metrics"])
            return reply
        if op == "cancel":
            return core.cancel(str(msg.get("id", "")))
        if op == "drain":
            threading.Thread(
                target=core.drain, kwargs={"timeout": msg.get("timeout", 60.0)},
                daemon=True,
            ).start()
            return {"ok": True, "draining": True}
        return {"ok": False, "error": "unknown-op",
                "reason": f"unknown op {op!r}"}
