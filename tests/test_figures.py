"""Tests for the ASCII figure renderer and the report tables."""

from repro.perf import breakdown_lbm_cpu, format_table
from repro.perf.figures import bar_chart, breakdown_chart, grouped_bar_chart


class TestBarChart:
    def test_scaling_to_max(self):
        out = bar_chart({"a": 100.0, "b": 50.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_title_and_unit(self):
        out = bar_chart({"x": 1.0}, title="T", unit=" MU/s")
        assert out.startswith("T\n")
        assert "MU/s" in out

    def test_empty(self):
        assert bar_chart({}, title="nothing") == "nothing"

    def test_zero_values(self):
        out = bar_chart({"a": 0.0, "b": 0.0})
        assert "#" not in out


class TestGroupedBarChart:
    def test_groups_rendered(self):
        out = grouped_bar_chart(
            {"SP": {"none": 10.0, "35d": 20.0}, "DP": {"none": 5.0, "35d": 10.0}},
            width=8,
        )
        assert "SP:" in out and "DP:" in out
        # global scaling: the largest bar is the SP 35d one
        sp35 = next(l for l in out.splitlines() if "35d" in l and l.strip().startswith("35d"))
        assert sp35.count("#") == 8

    def test_labels_aligned(self):
        out = grouped_bar_chart({"G": {"short": 1.0, "longer-label": 2.0}})
        lines = [l for l in out.splitlines() if "|" in l]
        assert len({l.index("|") for l in lines}) == 1


class TestBreakdownChart:
    def test_model_and_paper_bars(self):
        out = breakdown_chart(breakdown_lbm_cpu(), width=20)
        assert "(model)" in out
        assert "(paper)" in out
        assert out.count("(model)") == out.count("(paper)") == 6


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["col", "x"], [("a", 1), ("long-value", 22)])
        lines = out.splitlines()
        assert len({l.index("|") for l in lines if "|" in l}) == 1

    def test_title(self):
        out = format_table(["a"], [(1,)], title="My Table")
        assert out.startswith("My Table")


class TestRooflineChart:
    def test_points_and_ceilings_rendered(self):
        from repro.machine import CORE_I7
        from repro.perf import predict_7pt_cpu, predict_lbm_cpu
        from repro.perf.figures import roofline_chart

        pts = {}
        for label, est, ops in [
            ("7pt naive", predict_7pt_cpu("none", "sp", 256), 16),
            ("LBM naive", predict_lbm_cpu("none", "sp", 256), 259),
        ]:
            pts[label] = (est.bytes_per_update / ops, est.mupdates_per_s * 1e6 * ops)
        chart = roofline_chart(CORE_I7, pts)
        assert "A = 7pt naive" in chart
        assert "B = LBM naive" in chart
        assert "/" in chart and "-" in chart  # both ceilings drawn

    def test_bandwidth_bound_point_sits_on_slope(self):
        """A bandwidth-bound kernel's achieved ops lie on the BW ceiling."""
        from repro.machine import CORE_I7
        from repro.perf import predict_7pt_cpu
        from repro.perf.figures import roofline_chart

        est = predict_7pt_cpu("none", "sp", 256)
        ops_rate = est.mupdates_per_s * 1e6 * 16
        chart = roofline_chart(CORE_I7, {"pt": (est.bytes_per_update / 16, ops_rate)})
        # the marker replaced a slope character, i.e. it lies on the ceiling
        row = next(l for l in chart.splitlines() if "A" in l and l.startswith("|"))
        assert "/" in row or row.index("A") > 0
