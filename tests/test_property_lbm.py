"""Property-based tests for the LBM substrate and the extension layers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_3_5d_periodic, run_naive_periodic
from repro.distributed import DistributedJacobi
from repro.lbm import (
    Lattice,
    collide_bgk,
    density,
    make_kernel,
    run_lbm,
    run_lbm_35d,
    solid_walls,
    sphere_obstacle,
    total_mass,
)
from repro.stencils import Field3D, SevenPointStencil


@st.composite
def lattices(draw, min_side=7, max_side=12, with_obstacles=True):
    nz = draw(st.integers(min_side, max_side))
    ny = draw(st.integers(min_side, max_side))
    nx = draw(st.integers(min_side, max_side))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    shape = (nz, ny, nx)
    flags = None
    if with_obstacles and draw(st.booleans()):
        flags = solid_walls(shape)
        if draw(st.booleans()):
            flags |= sphere_obstacle(
                shape,
                (nz / 2, ny / 2, nx / 2),
                draw(st.floats(1.0, min_side / 4)),
            )
    rho = 1.0 + 0.05 * rng.random(shape)
    u = 0.02 * (rng.random((3,) + shape) - 0.5)
    return Lattice.from_moments(rho, u, flags)


@settings(max_examples=15, deadline=None)
@given(
    lat=lattices(),
    omega=st.floats(0.6, 1.8),
    dim_t=st.integers(1, 3),
    steps=st.integers(1, 4),
)
def test_lbm_blocked_always_matches_naive(lat, omega, dim_t, steps):
    ref = run_lbm(lat, steps, omega=omega)
    tile = max(2 * dim_t + 1, lat.shape[1] - 2)
    out = run_lbm_35d(lat, steps, dim_t=dim_t, tile=tile, omega=omega)
    assert np.array_equal(out.f.data, ref.f.data)


@settings(max_examples=15, deadline=None)
@given(lat=lattices(), omega=st.floats(0.6, 1.8), steps=st.integers(1, 6))
def test_lbm_closed_box_conserves_mass(lat, omega, steps):
    closed = Lattice(f=lat.f, flags=lat.flags | solid_walls(lat.shape))
    mask = closed.fluid_mask()
    if not mask.any():
        return
    m0 = total_mass(closed.f, mask)
    out = run_lbm(closed, steps, omega=omega)
    assert abs(total_mass(out.f, mask) - m0) <= 1e-9 * abs(m0)


@settings(max_examples=15, deadline=None)
@given(lat=lattices(with_obstacles=False), omega=st.floats(0.6, 1.8))
def test_collision_invariants(lat, omega):
    f = lat.f.data[:, 1, 1, :]  # a row of cells
    out = collide_bgk(f, omega)
    np.testing.assert_allclose(out.sum(axis=0), f.sum(axis=0), rtol=1e-10)
    assert (out.sum(axis=0) > 0).all()


@settings(max_examples=12, deadline=None)
@given(
    lat=lattices(min_side=8, with_obstacles=False),
    dim_t=st.integers(1, 2),
    steps=st.integers(1, 4),
)
def test_lbm_periodic_conserves_mass_exactly(lat, dim_t, steps):
    kernel = make_kernel(lat, omega=1.2)
    out = run_3_5d_periodic(kernel, lat.f, steps, dim_t, lat.shape[1], lat.shape[2])
    ref = run_naive_periodic(kernel, lat.f, steps)
    assert np.array_equal(out.data, ref.data)
    assert abs(total_mass(out) - total_mass(lat.f)) <= 1e-9 * total_mass(lat.f)
    assert (density(out) > 0).all()


@settings(max_examples=15, deadline=None)
@given(
    shape=st.tuples(
        st.integers(10, 24), st.integers(7, 12), st.integers(7, 12)
    ),
    seed=st.integers(0, 2**16),
    n_ranks=st.integers(1, 4),
    dim_t=st.integers(1, 3),
    steps=st.integers(1, 5),
)
def test_distributed_always_matches_serial(shape, seed, n_ranks, dim_t, steps):
    from repro.core import run_naive

    kernel = SevenPointStencil(alpha=0.42, beta=0.09)
    field = Field3D.random(shape, seed=seed)
    halo = dim_t  # radius 1
    min_slab = shape[0] // n_ranks
    if n_ranks > 1 and min_slab < halo:
        return  # decomposition legitimately rejects this configuration
    ref = run_naive(kernel, field, steps)
    out, comm = DistributedJacobi(kernel, n_ranks, dim_t=dim_t).run(field, steps)
    assert np.array_equal(out.data, ref.data)
    assert comm.pending() == 0
