"""Tests for the pluggable kernel backends and the zero-allocation hot path."""

import tracemalloc

import numpy as np
import pytest

from repro.core import Blocking4D, Blocking25D, Blocking35D, run_naive
from repro.perf.backends import (
    REPRO_BACKEND_ENV,
    BackendUnavailableError,
    InplaceKernel,
    available_backends,
    backend_names,
    default_backend_name,
    get_backend,
    wrap_kernel,
)
from repro.runtime import ParallelBlocking35D
from repro.stencils import Field3D, SevenPointStencil, TwentySevenPointStencil
from repro.stencils.generic import box_stencil, star_stencil

from .conftest import assert_fields_equal

#: steady-state allocations at least this large count as plane-sized
PLANE_BYTES = 16 * 1024


def _kernels():
    return {
        "7pt": SevenPointStencil(),
        "27pt": TwentySevenPointStencil(),
        "star-r2": star_stencil(2),
        "box-r1": box_stencil(1),
    }


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = backend_names()
        assert {"numpy", "numpy-inplace", "numba"} <= set(names)

    def test_available_subset(self):
        assert set(available_backends()) <= set(backend_names())
        assert "numpy" in available_backends()
        assert "numpy-inplace" in available_backends()

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("no-such-backend")
        with pytest.raises(ValueError, match="unknown backend"):
            wrap_kernel(SevenPointStencil(), "no-such-backend")

    def test_unavailable_backend_raises(self):
        numba = get_backend("numba")
        if numba.available:  # pragma: no cover - depends on environment
            pytest.skip("numba installed in this environment")
        assert numba.unavailable_reason
        with pytest.raises(BackendUnavailableError, match="numba"):
            wrap_kernel(SevenPointStencil(), "numba")

    def test_env_var_default(self, monkeypatch):
        monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)
        assert default_backend_name() == "numpy"
        monkeypatch.setenv(REPRO_BACKEND_ENV, "numpy-inplace")
        assert default_backend_name() == "numpy-inplace"
        assert isinstance(wrap_kernel(SevenPointStencil()), InplaceKernel)

    def test_numpy_backend_is_identity(self):
        k = SevenPointStencil()
        assert wrap_kernel(k, "numpy") is k

    def test_inplace_wrap_is_flat(self):
        k = SevenPointStencil()
        wrapped = wrap_kernel(k, "numpy-inplace")
        assert isinstance(wrapped, InplaceKernel)
        # wrapping a wrapper must not stack adapters
        rewrapped = wrap_kernel(wrapped, "numpy-inplace")
        assert rewrapped.inner is k

    def test_inplace_preserves_contract(self):
        k = TwentySevenPointStencil()
        wrapped = wrap_kernel(k, "numpy-inplace")
        assert wrapped.radius == k.radius
        assert wrapped.ncomp == k.ncomp
        assert wrapped.ops_per_update == k.ops_per_update
        assert wrapped.element_size(np.float32) == k.element_size(np.float32)


class TestBitExactness:
    @pytest.mark.parametrize("backend", ["numpy", "numpy-inplace"])
    @pytest.mark.parametrize("kname", ["7pt", "27pt", "star-r2", "box-r1"])
    def test_all_executors_match_naive(self, backend, kname):
        k = _kernels()[kname]
        field = Field3D.random((14, 30, 30), dtype=np.float32, seed=3)
        ref = run_naive(k, field, 4)
        wk = wrap_kernel(k, backend)
        tile_z = 12 if k.radius > 1 else 8
        executors = [
            Blocking35D(wk, 2, 16, 16, validate=True),
            Blocking35D(wk, 2, 16, 16, concurrent=False, validate=True),
            Blocking25D(wk, 16, 16),
            Blocking4D(wk, 2, tile_z, 16, 16),
            ParallelBlocking35D(wk, 2, 16, 16, n_threads=3),
        ]
        for ex in executors:
            out = ex.run(field, 4)
            assert_fields_equal(out, ref)

    @pytest.mark.parametrize("n_threads", [2, 3, 5])
    def test_parallel_strip_rows_regression(self, n_threads):
        """A row band whose compute slice is empty must still fill its
        boundary-strip rows (regression: star-r2 edge tiles under banding)."""
        k = star_stencil(2)
        field = Field3D.random((14, 30, 30), dtype=np.float32, seed=3)
        ref = run_naive(k, field, 5)
        for backend in ("numpy", "numpy-inplace"):
            wk = wrap_kernel(k, backend)
            out = ParallelBlocking35D(wk, 2, 16, 16, n_threads=n_threads).run(field, 5)
            assert_fields_equal(out, ref)

    def test_lbm_backends_match(self):
        from repro.lbm import LBMKernel, Lattice

        shape = (10, 16, 16)
        rng = np.random.default_rng(9)
        lat = Lattice.from_moments(
            (1.0 + 0.02 * rng.random(shape)).astype(np.float32),
            (0.01 * (rng.random((3,) + shape) - 0.5)).astype(np.float32),
        )
        solid = np.zeros(shape, dtype=bool)
        solid[4:6, 6:9, 6:9] = True
        lat.set_solid(solid)
        k = LBMKernel(lat.flags, omega=1.2)
        ref = run_naive(k, lat.f, 3)
        for backend in ("numpy", "numpy-inplace"):
            wk = wrap_kernel(k, backend)
            out = Blocking35D(wk, 2, 12, 12).run(lat.f, 3)
            assert_fields_equal(out, ref)

    def test_seam_writable_promise_leaves_region_exact(self):
        """seam_writable=True may clobber seam columns but the target region
        must stay bit-identical to the non-hinted call."""
        k = SevenPointStencil()
        wk = InplaceKernel(k)
        rng = np.random.default_rng(5)
        planes = [rng.random((1, 12, 18)).astype(np.float32) for _ in range(3)]
        yr, xr = (2, 9), (3, 14)
        out_plain = np.zeros((1, 12, 18), dtype=np.float32)
        out_hint = np.zeros((1, 12, 18), dtype=np.float32)
        wk.compute_plane(out_plain, planes, yr, xr)
        wk.compute_plane(out_hint, planes, yr, xr, seam_writable=True)
        assert np.array_equal(
            out_hint[0, yr[0] : yr[1], xr[0] : xr[1]],
            out_plain[0, yr[0] : yr[1], xr[0] : xr[1]],
        )


class TestSteadyStateAllocations:
    def test_sweep_round_allocates_no_planes_once_warm(self):
        """After warm-up, an in-place 3.5D sweep's transient allocation peak
        stays far below one plane (the numpy backend churns several)."""
        k = wrap_kernel(SevenPointStencil(), "numpy-inplace")
        field = Field3D.random((24, 48, 48), dtype=np.float32, seed=21)
        ex = Blocking35D(k, 2, 48, 48)
        from repro.stencils.grid import copy_shell

        src, dst = field.copy(), field.like()
        copy_shell(src, dst, k.radius)
        ex.sweep_round(src, dst, 2)  # warm-up: rings, arenas, plans
        tracemalloc.start()
        baseline, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        ex.sweep_round(src, dst, 2)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak - baseline < PLANE_BYTES

    def test_arena_reuses_buffers(self):
        k = wrap_kernel(SevenPointStencil(), "numpy-inplace")
        field = Field3D.random((12, 24, 24), dtype=np.float32, seed=22)
        ex = Blocking35D(k, 2, 24, 24)
        ex.run(field, 4)
        allocs_after_first = k.arena.allocations
        ex.run(field, 4)
        assert k.arena.allocations == allocs_after_first
        assert k.arena.hits > 0


class TestExecutorCacheReuse:
    @pytest.mark.parametrize("backend", ["numpy", "numpy-inplace"])
    def test_rerun_with_new_contents(self, backend):
        """Persistent tile state must not leak values between run() calls."""
        k = _kernels()["7pt"]
        wk = wrap_kernel(k, backend)
        ex = Blocking35D(wk, 2, 16, 16)
        for seed in (1, 2, 3):
            field = Field3D.random((12, 26, 26), dtype=np.float32, seed=seed)
            assert_fields_equal(ex.run(field, 4), run_naive(k, field, 4))

    def test_rerun_with_new_shape_and_dtype(self):
        k = _kernels()["7pt"]
        ex = Blocking35D(wrap_kernel(k, "numpy-inplace"), 2, 16, 16)
        for shape, dtype in [
            ((12, 26, 26), np.float32),
            ((10, 20, 32), np.float32),
            ((12, 26, 26), np.float64),
        ]:
            field = Field3D.random(shape, dtype=dtype, seed=4)
            assert_fields_equal(ex.run(field, 3), run_naive(k, field, 3))

    def test_clear_cache_still_correct(self):
        k = _kernels()["27pt"]
        ex = Blocking35D(wrap_kernel(k, "numpy-inplace"), 2, 16, 16)
        field = Field3D.random((12, 26, 26), dtype=np.float32, seed=6)
        ref = run_naive(k, field, 4)
        assert_fields_equal(ex.run(field, 4), ref)
        ex.clear_cache()
        assert_fields_equal(ex.run(field, 4), ref)


class TestRoundNotes:
    def test_35d_records_actual_round_t(self):
        from repro.core import TrafficStats

        k = SevenPointStencil()
        field = Field3D.random((10, 20, 20), dtype=np.float32, seed=8)
        traffic = TrafficStats()
        Blocking35D(k, 2, 20, 20).run(field, 3, traffic)
        # steps=3, dim_t=2: a full round then a remainder round
        assert traffic.notes["round_t"] == [2, 1]
        assert traffic.notes["dim_t"] == 2

    def test_parallel_35d_records_actual_round_t(self):
        from repro.core import TrafficStats

        k = SevenPointStencil()
        field = Field3D.random((10, 20, 20), dtype=np.float32, seed=8)
        traffic = TrafficStats()
        ParallelBlocking35D(k, 2, 20, 20, n_threads=2).run(field, 5, traffic=traffic)
        assert traffic.notes["round_t"] == [2, 2, 1]

    def test_4d_records_actual_round_t(self):
        from repro.core import TrafficStats

        k = SevenPointStencil()
        field = Field3D.random((12, 20, 20), dtype=np.float32, seed=8)
        traffic = TrafficStats()
        Blocking4D(k, 2, 8, 20, 20).run(field, 3, traffic)
        assert traffic.notes["round_t"] == [2, 1]


class TestAutotuneBackend:
    def test_autotune_accepts_backend(self):
        from repro.core import autotune_empirical
        from repro.machine import CORE_I7

        cands = autotune_empirical(
            SevenPointStencil(),
            CORE_I7,
            np.float32,
            probe_shape=(8, 24, 24),
            dim_t_candidates=(1, 2),
            tile_candidates=(24,),
            backend="numpy-inplace",
        )
        assert cands
        assert all(c.predicted_time_per_update > 0 for c in cands)

    def test_autotune_unknown_backend(self):
        from repro.core import autotune_empirical
        from repro.machine import CORE_I7

        with pytest.raises(ValueError, match="unknown backend"):
            autotune_empirical(
                SevenPointStencil(),
                CORE_I7,
                np.float32,
                probe_shape=(8, 24, 24),
                backend="no-such-backend",
            )
