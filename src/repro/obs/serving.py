"""Serving telemetry: per-job traces, tenant accounting, Prometheus text.

The serve daemon (PR 8) runs jobs for many tenants at once; this module
gives each *job* an observable life and each *tenant* a billable one.

* **End-to-end job traces.**  ``repro submit`` mints a :func:`trace id
  <mint_trace_id>`, sends it inside the :class:`~repro.serve.protocol.JobSpec`,
  and both sides append epoch-timestamped spans to a :class:`JobTraceLog`
  (``job_submit``/``job_admit``/``job_queue_wait``/``job_run``/``job_round``/
  ``job_respond``).  Because the spans use ``time.time_ns()`` — the wall
  clock, shared across processes — the client can fetch the daemon's spans
  over the wire and :func:`merge_job_trace` them with its own into one
  Perfetto-loadable document where pid 1 is the client and pid 2 the
  daemon, every span carrying the same ``trace_id``.
* **Billing-grade accounting.**  The :class:`UsageLedger` attributes
  lattice-site updates, bytes moved, cpu time, and outcome counts to
  tenants using *integer* arithmetic only, so its per-tenant sums
  :meth:`~UsageLedger.reconcile` **exactly** against the daemon's global
  counters — a float accumulator would make "billing minus metering"
  drift with thread interleaving.  Rollups are fsync'd JSONL, one
  self-contained snapshot per line, in the same append-only spirit as the
  serve journal.
* **Prometheus exposition.**  :func:`prometheus_exposition` renders any
  metrics document (counters/gauges/histograms/quantile sketches) in the
  text format scraped by Prometheus; ``repro jobs --prom`` and the
  daemon's ``stats`` verb use it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, fields
from typing import Any, Iterable

from .export import TRACE_SCHEMA_ID
from .trace import TRACE

__all__ = [
    "JOB_SPAN_NAMES",
    "JobTraceLog",
    "TenantUsage",
    "UsageLedger",
    "merge_job_trace",
    "mint_trace_id",
    "prometheus_exposition",
    "read_rollups",
]

#: the per-job lifecycle span names, in lifecycle order
JOB_SPAN_NAMES = (
    "job_submit",      # client: request sent -> accepted/rejected reply
    "job_admit",       # daemon: admission decision + journal commit
    "job_queue_wait",  # daemon: accepted -> first picked up by a worker
    "job_run",         # daemon: worker execution (whole job, all rounds)
    "job_round",       # daemon: one dim_t-step sweep round
    "job_respond",     # client: result fetch after terminal status
)


def mint_trace_id() -> str:
    """A 16-hex-char id, unique enough to join client and daemon spans."""
    return os.urandom(8).hex()


class JobTraceLog:
    """Thread-safe span log for one job, timestamped on the wall clock.

    The global :data:`~repro.obs.trace.TRACE` ring buffer uses
    ``perf_counter_ns`` — monotonic but process-local, useless for
    stitching client and daemon into one timeline.  Job spans therefore
    record ``time.time_ns()`` (epoch), are capped per job (a 100k-step
    job must not hold 25k round spans in daemon memory), and are
    *mirrored* into the global tracer when it is armed so a traced daemon
    run still sees them.
    """

    def __init__(self, trace_id: str, job_id: str = "", cap: int = 512):
        self.trace_id = trace_id
        self.job_id = job_id
        self.cap = max(1, cap)
        self.dropped = 0
        self._spans: list[dict[str, Any]] = []
        self._lock = threading.Lock()

    def add(self, name: str, start_ns: int, end_ns: int, **attrs) -> None:
        """Record one closed span (epoch nanoseconds)."""
        span = {
            "name": name,
            "start_ns": int(start_ns),
            "dur_ns": max(0, int(end_ns) - int(start_ns)),
            "trace_id": self.trace_id,
        }
        if self.job_id:
            attrs.setdefault("id", self.job_id)
        if attrs:
            span["attrs"] = attrs
        with self._lock:
            if len(self._spans) >= self.cap:
                self.dropped += 1
                return
            self._spans.append(span)

    class _Timed:
        __slots__ = ("log", "name", "attrs", "start_ns")

        def __init__(self, log: "JobTraceLog", name: str, attrs: dict):
            self.log = log
            self.name = name
            self.attrs = attrs
            self.start_ns = 0

        def __enter__(self):
            self.start_ns = time.time_ns()
            return self

        def __exit__(self, *exc):
            self.log.add(
                self.name, self.start_ns, time.time_ns(), **self.attrs
            )
            return False

    def span(self, name: str, **attrs):
        """Context manager timing a span on the wall clock.

        Also opens a mirror span on the global tracer (a no-op when it is
        disarmed) so ``repro serve --trace`` output includes job spans.
        """
        timed = self._Timed(self, name, attrs)
        mirror = TRACE.span(name, trace_id=self.trace_id, **attrs)

        class _Both:
            def __enter__(_s):
                mirror.__enter__()
                return timed.__enter__()

            def __exit__(_s, *exc):
                timed.__exit__(*exc)
                return mirror.__exit__(*exc)

        return _Both()

    def to_dicts(self) -> list[dict[str, Any]]:
        """Wire-ready copies of the recorded spans, in record order."""
        with self._lock:
            return [dict(s) for s in self._spans]


def merge_job_trace(
    client_spans: Iterable[dict[str, Any]],
    daemon_spans: Iterable[dict[str, Any]] = (),
    *,
    trace_id: str = "",
) -> dict[str, Any]:
    """One chrome-trace document from client- and daemon-side job spans.

    Both span lists use epoch nanoseconds, so they land on one shared
    timeline: pid 1 = client, pid 2 = daemon, Perfetto shows the submit
    span covering the daemon's admit/queue/run spans with the response at
    the end.  Timestamps are rebased to the earliest span so the document
    does not carry 19-digit epoch microsecond values.
    """
    groups = [("client", list(client_spans)), ("serve daemon", list(daemon_spans))]
    all_spans = [s for _, spans in groups for s in spans]
    t0 = min((s["start_ns"] for s in all_spans), default=0)
    events: list[dict[str, Any]] = []
    for pid, (pname, spans) in enumerate(groups, start=1):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": pname},
        })
        for s in spans:
            args = dict(s.get("attrs") or {})
            args["trace_id"] = s.get("trace_id", trace_id)
            events.append({
                "name": s["name"],
                "cat": "repro",
                "ph": "X",
                "ts": (s["start_ns"] - t0) / 1000.0,
                "dur": s.get("dur_ns", 0) / 1000.0,
                "pid": pid,
                "tid": 0,
                "args": args,
            })
    return {
        "schema": TRACE_SCHEMA_ID,
        "displayTimeUnit": "ms",
        "traceEvents": events,
        "otherData": {
            "generator": "repro.obs.serving",
            "trace_id": trace_id or (
                all_spans[0].get("trace_id", "") if all_spans else ""
            ),
            "dropped_spans": 0,
        },
    }


# ----------------------------------------------------------------------
# per-tenant accounting
# ----------------------------------------------------------------------

#: terminal/outcome events the ledger counts per tenant
LEDGER_EVENTS = (
    "completed", "degraded", "failed", "cancelled",
    "shed", "preempted", "rejected",
)


@dataclass
class TenantUsage:
    """One tenant's accumulated usage.  All fields are integers by design:
    integer addition is associative, so the ledger's sums reconcile
    *exactly* with the global counters no matter how worker threads
    interleave."""

    site_updates: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    cpu_ns: int = 0
    #: cpu spent on integrity verification (the SDC tier of the job spec)
    #: — metered separately from compute so the cost of ``integrity`` is
    #: visible per tenant, not folded into the sweep time
    verify_cpu_ns: int = 0
    completed: int = 0
    degraded: int = 0
    failed: int = 0
    cancelled: int = 0
    shed: int = 0
    preempted: int = 0
    rejected: int = 0

    def to_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class UsageLedger:
    """Attributes work and outcomes to tenants; optionally rolls up to disk.

    ``charge`` records resources consumed (site updates, bytes, cpu time);
    ``count`` records outcome events.  When constructed with a ``path``,
    every ``rollup_every`` mutations — and every explicit :meth:`rollup` —
    append one fsync'd JSONL line holding the complete per-tenant state,
    so the *last* line of the file is always a full, consistent snapshot
    (crash-safe the same way the serve journal is: a torn tail line is
    ignorable because the previous line is complete).
    """

    def __init__(
        self,
        path: str | None = None,
        *,
        fsync: bool = True,
        rollup_every: int = 64,
    ) -> None:
        self.path = str(path) if path else None
        self.fsync = fsync
        self.rollup_every = max(1, rollup_every)
        self._tenants: dict[str, TenantUsage] = {}
        self._lock = threading.Lock()
        self._mutations = 0
        self.rollups_written = 0

    def _usage(self, tenant: str) -> TenantUsage:
        u = self._tenants.get(tenant)
        if u is None:
            u = self._tenants[tenant] = TenantUsage()
        return u

    def charge(
        self,
        tenant: str,
        *,
        site_updates: int = 0,
        bytes_read: int = 0,
        bytes_written: int = 0,
        cpu_ns: int = 0,
        verify_cpu_ns: int = 0,
    ) -> None:
        """Attribute consumed resources to ``tenant`` (integers only)."""
        with self._lock:
            u = self._usage(tenant)
            u.site_updates += int(site_updates)
            u.bytes_read += int(bytes_read)
            u.bytes_written += int(bytes_written)
            u.cpu_ns += int(cpu_ns)
            u.verify_cpu_ns += int(verify_cpu_ns)
            self._mutations += 1
            due = self._mutations % self.rollup_every == 0
        if due:
            self.rollup()

    def count(self, tenant: str, event: str, n: int = 1) -> None:
        """Record an outcome event (one of :data:`LEDGER_EVENTS`)."""
        if event not in LEDGER_EVENTS:
            raise ValueError(f"unknown ledger event {event!r}")
        with self._lock:
            u = self._usage(tenant)
            setattr(u, event, getattr(u, event) + int(n))
            self._mutations += 1

    def per_tenant(self) -> dict[str, dict[str, int]]:
        with self._lock:
            return {t: u.to_dict() for t, u in sorted(self._tenants.items())}

    def totals(self) -> dict[str, int]:
        """Sum over tenants — the numbers that must equal the global counters."""
        with self._lock:
            out = TenantUsage()
            for u in self._tenants.values():
                for f in fields(TenantUsage):
                    setattr(out, f.name,
                            getattr(out, f.name) + getattr(u, f.name))
            return out.to_dict()

    def reconcile(self, global_totals: dict[str, int]) -> list[str]:
        """Mismatch descriptions (empty = billing agrees with metering).

        ``global_totals`` maps :class:`TenantUsage` field names to the
        independently maintained global values; only the keys present are
        checked, and equality is exact.
        """
        mine = self.totals()
        bad = []
        for key, expect in global_totals.items():
            if key not in mine:
                continue
            if int(mine[key]) != int(expect):
                bad.append(
                    f"{key}: ledger={mine[key]} global={int(expect)}"
                )
        return bad

    def rollup(self) -> dict[str, Any]:
        """Append one full-state JSONL snapshot (fsync'd) and return it."""
        doc = {
            "schema": "repro.ledger/v1",
            "ts_ns": time.time_ns(),
            "tenants": self.per_tenant(),
            "totals": self.totals(),
        }
        if self.path:
            line = json.dumps(doc, separators=(",", ":")) + "\n"
            with self._lock:
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(line)
                    fh.flush()
                    if self.fsync:
                        os.fsync(fh.fileno())
                self.rollups_written += 1
        return doc


def read_rollups(path: str) -> list[dict[str, Any]]:
    """Parse a rollup JSONL file, skipping a torn (crashed-mid-write) tail."""
    out: list[dict[str, Any]] = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(json.loads(line))
                except json.JSONDecodeError:
                    break  # torn tail: everything before it is intact
    except FileNotFoundError:
        pass
    return out


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch == "_") else "_")
    s = "".join(out)
    if s and s[0].isdigit():
        s = "_" + s
    return s


def _prom_value(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    if v == float("-inf"):
        return "-Inf"
    return repr(float(v))


def prometheus_exposition(doc: dict[str, Any], prefix: str = "repro") -> str:
    """Render a metrics document in the Prometheus text format.

    ``doc`` is anything shaped like ``MetricsRegistry.to_dict()`` /
    ``metrics_document`` output: ``counters``/``gauges``/``histograms``/
    ``quantiles`` maps.  Counters gain the conventional ``_total``
    suffix; quantile sketches render as summaries with ``quantile``
    labels.
    """
    lines: list[str] = []
    for name, value in sorted((doc.get("counters") or {}).items()):
        metric = f"{prefix}_{_prom_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, value in sorted((doc.get("gauges") or {}).items()):
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, hist in sorted((doc.get("histograms") or {}).items()):
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_sum {_prom_value(hist.get('sum', 0.0))}")
        lines.append(f"{metric}_count {int(hist.get('count', 0))}")
    for name, sk in sorted((doc.get("quantiles") or {}).items()):
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} summary")
        for q, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
            lines.append(
                f'{metric}{{quantile="{q}"}} {_prom_value(sk.get(key, 0.0))}'
            )
        lines.append(f"{metric}_sum {_prom_value(sk.get('sum', 0.0))}")
        lines.append(f"{metric}_count {int(sk.get('count', 0))}")
    return "\n".join(lines) + "\n"
